//! Regression guards for the paper's headline shapes. If a pipeline or
//! cost-model change breaks one of these, the reproduction has drifted.
//!
//! Slow in debug builds, so they only run under `--release`
//! (`cargo test --release -p bench`).

use bench::driver::{fig9_configs, Driver, JobConfig, Program};
use bench::{geomean, measure, measure_baseline, options_at, paper_options, slowdown};
use meminstrument::{Mechanism, MiConfig, OptConfig};
use mir::pipeline::ExtensionPoint;

fn mean_slowdown(cfg: &MiConfig, opts: meminstrument::runtime::BuildOptions) -> f64 {
    let xs: Vec<f64> = cbench::all()
        .iter()
        .map(|b| {
            let base = measure_baseline(b);
            slowdown(&measure(b, cfg, opts), &base)
        })
        .collect();
    geomean(&xs)
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow without optimizations")]
fn figure9_means_stay_near_the_paper() {
    let sb = mean_slowdown(&MiConfig::new(Mechanism::SoftBound), paper_options());
    let lf = mean_slowdown(&MiConfig::new(Mechanism::LowFat), paper_options());
    // Paper: 1.74x / 1.77x. Allow a band, and require near-parity.
    assert!((1.55..=2.05).contains(&sb), "SoftBound mean drifted: {sb:.2}");
    assert!((1.55..=2.05).contains(&lf), "Low-Fat mean drifted: {lf:.2}");
    assert!((sb - lf).abs() < 0.15, "means no longer comparable: {sb:.2} vs {lf:.2}");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow without optimizations")]
fn figure9_crossovers_hold() {
    let check = |name: &str| {
        let b = cbench::by_name(name).unwrap();
        let base = measure_baseline(&b);
        let sb =
            slowdown(&measure(&b, &MiConfig::new(Mechanism::SoftBound), paper_options()), &base);
        let lf = slowdown(&measure(&b, &MiConfig::new(Mechanism::LowFat), paper_options()), &base);
        (sb, lf)
    };
    // equake: trie lookups in the hot loop make SoftBound clearly worse.
    let (sb, lf) = check("183equake");
    assert!(sb > lf * 1.1, "equake crossover lost: sb {sb:.2} vs lf {lf:.2}");
    // crafty: the wider Low-Fat check dominates.
    let (sb, lf) = check("186crafty");
    assert!(lf > sb * 1.03, "crafty crossover lost: sb {sb:.2} vs lf {lf:.2}");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow without optimizations")]
fn extension_point_ordering_holds() {
    for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
        let cfg = MiConfig::new(mech);
        let early = mean_slowdown(&cfg, options_at(ExtensionPoint::ModuleOptimizerEarly));
        let scalar = mean_slowdown(&cfg, options_at(ExtensionPoint::ScalarOptimizerLate));
        let vec = mean_slowdown(&cfg, options_at(ExtensionPoint::VectorizerStart));
        // §5.5: early is clearly worse; the two late points are comparable.
        assert!(
            (early - 1.0) > (vec - 1.0) * 1.15,
            "{mech:?}: early {early:.2} not clearly above late {vec:.2}"
        );
        assert!(
            (scalar - vec).abs() < 0.12,
            "{mech:?}: late points diverged: {scalar:.2} vs {vec:.2}"
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow without optimizations")]
fn table2_signature_entries_hold() {
    // Dominance-only, like the paper artifact: loop widening would shrink
    // the executed-check denominator and skew the wide percentages.
    let wide = |name: &str, mech: Mechanism| {
        let b = cbench::by_name(name).unwrap();
        let mut cfg = MiConfig::new(mech);
        cfg.opt = OptConfig::no_loops();
        measure(&b, &cfg, paper_options()).stats.wide_check_percent()
    };
    // gzip ~62 % wide under SoftBound, fully checked under Low-Fat.
    let g = wide("164gzip", Mechanism::SoftBound);
    assert!((50.0..75.0).contains(&g), "gzip SB wide {g:.1}");
    assert_eq!(wide("164gzip", Mechanism::LowFat), 0.0);
    // 429mcf ~54 % wide under Low-Fat, fully checked under SoftBound.
    let m = wide("429mcf", Mechanism::LowFat);
    assert!((40.0..75.0).contains(&m), "429mcf LF wide {m:.1}");
    assert_eq!(wide("429mcf", Mechanism::SoftBound), 0.0);
    // 433milc: size-less declaration, never used → exactly zero.
    assert_eq!(wide("433milc", Mechanism::SoftBound), 0.0);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow without optimizations")]
fn geninvariants_far_below_full_checking() {
    // §5.4/Figures 10-11: metadata propagation alone costs a small fraction
    // of full checking.
    for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
        let full = mean_slowdown(&MiConfig::new(mech), paper_options());
        let meta = mean_slowdown(&MiConfig::invariants_only(mech), paper_options());
        assert!(
            (meta - 1.0) < (full - 1.0) * 0.3,
            "{mech:?}: metadata-only {meta:.2} too close to full {full:.2}"
        );
    }
}

/// Debug-profile smoke variant of the headline guards: a three-benchmark
/// subset through the `evald` driver, with loose bands. The full-suite
/// assertions above stay release-only; this one keeps `cargo test -q`
/// exercising the same code paths cheaply.
#[test]
fn headline_smoke_subset() {
    let subset = ["181mcf", "183equake", "186crafty"];
    let programs: Vec<Program> =
        subset.iter().map(|n| Program::from(&cbench::by_name(n).unwrap())).collect();
    let report = Driver::new(programs, fig9_configs()).run();
    let base_cfg = JobConfig::baseline();
    let sb_cfg = JobConfig::mechanism(Mechanism::SoftBound);
    let lf_cfg = JobConfig::mechanism(Mechanism::LowFat);
    let slow = |name: &str, cfg: &JobConfig| {
        report.ok(name, cfg).stats.cost_total as f64
            / report.ok(name, &base_cfg).stats.cost_total as f64
    };
    for name in subset {
        let (sb, lf) = (slow(name, &sb_cfg), slow(name, &lf_cfg));
        assert!(sb > 1.0 && sb < 5.0, "{name}: SoftBound slowdown implausible: {sb:.2}");
        assert!(lf > 1.0 && lf < 5.0, "{name}: Low-Fat slowdown implausible: {lf:.2}");
    }
    // The two Figure 9 crossover benchmarks keep their winners even in the
    // smoke subset.
    assert!(
        slow("183equake", &sb_cfg) > slow("183equake", &lf_cfg),
        "equake must be SoftBound-dominated"
    );
    assert!(
        slow("186crafty", &lf_cfg) > slow("186crafty", &sb_cfg),
        "crafty must be Low-Fat-dominated"
    );
}
