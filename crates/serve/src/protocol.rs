//! The frozen `mi-serve/1` wire protocol.
//!
//! Newline-delimited JSON over a Unix domain socket: each request and each
//! response is exactly one line (payloads that are themselves multi-line
//! documents — profiles, metrics — travel string-escaped or
//! newline-stripped). The schema is documented in `DESIGN.md` and pinned
//! byte-for-byte by the golden-file test `tests/golden.rs`.
//!
//! Byte-identity note: a response's `result` (and a `trap` error's
//! `report`) is always the envelope's *last* field, so [`Response::decode`]
//! can hand callers the raw payload bytes unreparsed — which is how
//! `mi run --connect` and the identity tests compare served results
//! against in-process sweeps without a lossy JSON round-trip.

use bench::job::{JobError, JobSpec};
use bench::json::Json;

/// The protocol identifier every line carries.
pub const SCHEMA: &str = "mi-serve/1";

/// Per-job case cap for [`Op::Fuzz`].
pub const MAX_FUZZ_CASES: u64 = 64;

/// A client request's operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Enqueue a job; the response arrives when it completes (responses to
    /// pipelined jobs may arrive out of submission order — match by `id`).
    Job {
        /// What to run.
        spec: JobSpec,
        /// Per-job deadline in milliseconds, measured from arrival (so it
        /// covers queue wait). Omitted = the server's default.
        deadline_ms: Option<u64>,
    },
    /// Enqueue a bounded differential-fuzz job: run oracle cases
    /// `start..start + cases` of `seed`'s deterministic case stream
    /// (`cases` is capped at [`MAX_FUZZ_CASES`] per job so one request
    /// cannot monopolize a worker — sweep a large range by pipelining
    /// several jobs).
    Fuzz {
        /// Root seed of the case stream.
        seed: u64,
        /// First case index.
        start: u64,
        /// Number of cases (1..=[`MAX_FUZZ_CASES`]).
        cases: u64,
    },
    /// Cancel a queued or running job submitted on this connection.
    Cancel {
        /// The request id of the job to cancel.
        target: u64,
    },
    /// Fetch the daemon's merged `mi-metrics/1` registry (artifact-store
    /// hit/miss/eviction counters, job outcome tallies, live gauges).
    Metrics,
    /// Liveness probe.
    Ping,
    /// Drain: reject new jobs, finish queued and running ones, reply, stop.
    Shutdown,
}

impl Op {
    /// The operation's wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Job { .. } => "job",
            Op::Fuzz { .. } => "fuzz",
            Op::Cancel { .. } => "cancel",
            Op::Metrics => "metrics",
            Op::Ping => "ping",
            Op::Shutdown => "shutdown",
        }
    }
}

/// One request line.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen id, echoed in the response. Must be unique among the
    /// connection's outstanding requests.
    pub id: u64,
    /// The operation.
    pub op: Op,
}

impl Request {
    /// Encodes the request as its wire line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = format!("{{\"schema\":\"{SCHEMA}\",\"id\":{},\"op\":", self.id);
        match &self.op {
            Op::Job { spec, deadline_ms } => {
                out.push_str("\"job\",\"job\":");
                out.push_str(&spec.to_json());
                if let Some(d) = deadline_ms {
                    out.push_str(&format!(",\"deadline_ms\":{d}"));
                }
            }
            Op::Fuzz { seed, start, cases } => {
                out.push_str(&format!(
                    "\"fuzz\",\"seed\":{seed},\"start\":{start},\"cases\":{cases}"
                ));
            }
            Op::Cancel { target } => out.push_str(&format!("\"cancel\",\"target\":{target}")),
            Op::Metrics => out.push_str("\"metrics\""),
            Op::Ping => out.push_str("\"ping\""),
            Op::Shutdown => out.push_str("\"shutdown\""),
        }
        out.push('}');
        out
    }

    /// Decodes one wire line.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first structural problem (bad JSON,
    /// wrong schema, missing id, unknown op, malformed job).
    pub fn decode(line: &str) -> Result<Request, String> {
        let v = Json::parse(line.trim())?;
        match v.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            other => return Err(format!("expected schema {SCHEMA:?}, got {other:?}")),
        }
        let id = v.get("id").and_then(Json::as_u64).ok_or("request missing numeric \"id\"")?;
        let op = match v.get("op").and_then(Json::as_str) {
            Some("job") => Op::Job {
                spec: JobSpec::from_json(v.get("job").ok_or("job op missing \"job\"")?)?,
                deadline_ms: v.get("deadline_ms").and_then(Json::as_u64),
            },
            Some("fuzz") => {
                let cases = v
                    .get("cases")
                    .and_then(Json::as_u64)
                    .ok_or("fuzz op missing numeric \"cases\"")?;
                if cases == 0 || cases > MAX_FUZZ_CASES {
                    return Err(format!(
                        "fuzz \"cases\" must be 1..={MAX_FUZZ_CASES}, got {cases}"
                    ));
                }
                Op::Fuzz {
                    seed: v
                        .get("seed")
                        .and_then(Json::as_u64)
                        .ok_or("fuzz op missing numeric \"seed\"")?,
                    start: v.get("start").and_then(Json::as_u64).unwrap_or(0),
                    cases,
                }
            }
            Some("cancel") => Op::Cancel {
                target: v
                    .get("target")
                    .and_then(Json::as_u64)
                    .ok_or("cancel op missing numeric \"target\"")?,
            },
            Some("metrics") => Op::Metrics,
            Some("ping") => Op::Ping,
            Some("shutdown") => Op::Shutdown,
            other => return Err(format!("unknown op {other:?}")),
        };
        Ok(Request { id, op })
    }
}

/// A response's payload.
#[derive(Clone, Debug, PartialEq)]
pub enum ResponseBody {
    /// Success; `result` holds the raw JSON payload bytes (for run jobs:
    /// exactly the driver's cell rendering).
    Ok {
        /// Raw single-line JSON.
        result: String,
    },
    /// Failure, as a typed [`JobError`].
    Err(JobError),
}

/// One response line.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The request id this responds to.
    pub id: u64,
    /// Payload.
    pub body: ResponseBody,
}

impl Response {
    /// Encodes the response as its wire line (no trailing newline). The
    /// payload is always the last envelope field — see the module docs.
    pub fn encode(&self) -> String {
        match &self.body {
            ResponseBody::Ok { result } => format!(
                "{{\"schema\":\"{SCHEMA}\",\"id\":{},\"ok\":true,\"result\":{result}}}",
                self.id
            ),
            ResponseBody::Err(e) => format!(
                "{{\"schema\":\"{SCHEMA}\",\"id\":{},\"ok\":false,\"error\":{}}}",
                self.id,
                e.to_json()
            ),
        }
    }

    /// Decodes one wire line, preserving the payload's raw bytes.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first structural problem.
    pub fn decode(line: &str) -> Result<Response, String> {
        let line = line.trim();
        let v = Json::parse(line)?;
        match v.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            other => return Err(format!("expected schema {SCHEMA:?}, got {other:?}")),
        }
        let id = v.get("id").and_then(Json::as_u64).ok_or("response missing numeric \"id\"")?;
        let body = match v.get("ok").and_then(Json::as_bool) {
            Some(true) => ResponseBody::Ok {
                result: raw_last_field(line, "result")
                    .ok_or("ok response missing \"result\"")?
                    .to_string(),
            },
            Some(false) => {
                let raw = raw_last_field(line, "error").ok_or("err response missing \"error\"")?;
                ResponseBody::Err(decode_error(raw)?)
            }
            None => return Err("response missing boolean \"ok\"".to_string()),
        };
        Ok(Response { id, body })
    }
}

/// Convenience: the wire line rejecting request `id` with `reason` (used
/// by the server for lines it cannot decode far enough to dispatch).
pub fn reject_line(id: u64, reason: &str) -> String {
    Response { id, body: ResponseBody::Err(JobError::Rejected { reason: reason.to_string() }) }
        .encode()
}

/// Slices the raw bytes of envelope field `key`, relying on the encoder's
/// guarantee that `key` is the last field (everything from after the colon
/// to the closing `}` of the envelope). Only envelope-controlled text
/// precedes the payload, so the first occurrence of `"key":` is the field.
fn raw_last_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let end = line.rfind('}')?;
    (start < end).then(|| &line[start..end])
}

fn decode_error(raw: &str) -> Result<JobError, String> {
    let v = Json::parse(raw)?;
    let e = JobError::from_json(&v)?;
    // Re-slice a trap's report from the raw text so its bytes survive
    // (JobError::from_json re-renders, which is lossless JSON-wise but not
    // byte-wise).
    if let JobError::Trap { .. } = e {
        let report =
            raw_last_field(raw, "report").ok_or("trap error missing \"report\"")?.to_string();
        return Ok(JobError::Trap { report });
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bench::job::{JobAction, SourceRef};

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request {
                id: 1,
                op: Op::Job {
                    spec: JobSpec {
                        source: SourceRef::Benchmark { name: "183equake".into() },
                        config: "softbound@O3@VectorizerStart".parse().unwrap(),
                        action: JobAction::Run,
                    },
                    deadline_ms: Some(5000),
                },
            },
            Request { id: 2, op: Op::Cancel { target: 1 } },
            Request { id: 6, op: Op::Fuzz { seed: 42, start: 128, cases: 16 } },
            Request { id: 3, op: Op::Metrics },
            Request { id: 4, op: Op::Ping },
            Request { id: 5, op: Op::Shutdown },
        ];
        for r in reqs {
            let line = r.encode();
            assert_eq!(Request::decode(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn responses_preserve_raw_payload_bytes() {
        // Spacing inside the payload (driver cell style) must survive.
        let payload = r#"{"program": "x", "config": "baseline@O3@VectorizerStart", "ok": true}"#;
        let line = Response { id: 7, body: ResponseBody::Ok { result: payload.into() } }.encode();
        let back = Response::decode(&line).unwrap();
        assert_eq!(back.id, 7);
        assert_eq!(back.body, ResponseBody::Ok { result: payload.to_string() });

        let trap = JobError::Trap { report: r#"{"ok": false, "trap": "boom"}"#.to_string() };
        let line = Response { id: 8, body: ResponseBody::Err(trap.clone()) }.encode();
        assert_eq!(Response::decode(&line).unwrap().body, ResponseBody::Err(trap));
    }

    #[test]
    fn fuzz_case_range_is_bounded() {
        // An omitted start defaults to 0; the case count is mandatory and
        // capped so one request cannot monopolize a worker.
        let r = Request::decode(
            "{\"schema\":\"mi-serve/1\",\"id\":1,\"op\":\"fuzz\",\"seed\":7,\"cases\":64}",
        )
        .unwrap();
        assert_eq!(r.op, Op::Fuzz { seed: 7, start: 0, cases: 64 });
        for bad in [
            "{\"schema\":\"mi-serve/1\",\"id\":1,\"op\":\"fuzz\",\"seed\":7,\"cases\":0}",
            "{\"schema\":\"mi-serve/1\",\"id\":1,\"op\":\"fuzz\",\"seed\":7,\"cases\":65}",
            "{\"schema\":\"mi-serve/1\",\"id\":1,\"op\":\"fuzz\",\"cases\":8}",
            "{\"schema\":\"mi-serve/1\",\"id\":1,\"op\":\"fuzz\",\"seed\":7}",
        ] {
            assert!(Request::decode(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Request::decode("not json").is_err());
        assert!(Request::decode("{\"schema\":\"mi-serve/0\",\"id\":1,\"op\":\"ping\"}").is_err());
        assert!(Request::decode("{\"schema\":\"mi-serve/1\",\"op\":\"ping\"}").is_err());
        assert!(Request::decode("{\"schema\":\"mi-serve/1\",\"id\":1,\"op\":\"nope\"}").is_err());
        assert!(Response::decode("{\"schema\":\"mi-serve/1\",\"id\":1}").is_err());
    }
}
