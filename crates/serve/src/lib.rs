#![warn(missing_docs)]

//! `serve`: instrumentation as a service.
//!
//! The `mi serve` daemon accepts compile/run/profile jobs over a Unix
//! domain socket (newline-delimited JSON, schema `mi-serve/1`), executes
//! them on a bounded worker pool against a shared content-addressed
//! [`bench::store::ArtifactStore`], and replies with byte-for-byte the
//! JSON the in-process `bench` driver would produce for the same cell —
//! so a warm daemon turns repeated evaluation sweeps (editor tooling, CI,
//! the fuzz oracle's matrix) from recompile-everything into cache hits,
//! without changing a single output byte.
//!
//! * [`protocol`] — the frozen wire schema (requests, responses, errors).
//! * [`server`] — the daemon: listener, per-connection readers, worker
//!   pool, deadline/cancel enforcement, graceful drain.
//! * [`client`] — a blocking, pipelining-capable client.
//!
//! Jobs themselves are the typed [`bench::job`] API; this crate only adds
//! transport and scheduling.

pub mod client;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use protocol::{Op, Request, Response, ResponseBody, SCHEMA};
pub use server::{start, Server, ServerConfig};
