//! The `mi serve` daemon: a bounded worker pool executing typed jobs from
//! Unix-domain-socket connections against one shared [`ArtifactStore`].
//!
//! Architecture (all `std`, no dependencies):
//!
//! * one **listener** thread accepts connections (non-blocking accept with
//!   a stop-flag poll);
//! * one **reader** thread per connection decodes request lines; control
//!   ops (`ping`, `cancel`, `metrics`, `shutdown`) are answered inline,
//!   `job` and `fuzz` ops are enqueued;
//! * `workers` **worker** threads pull jobs off one FIFO queue and run
//!   [`bench::job::execute`] against the shared store, replying on the
//!   submitting connection (a per-connection write mutex serializes lines).
//!
//! Deadlines are measured from *arrival*, so they cover queue wait;
//! expiry and cancellation inside a running cell are enforced by the VM's
//! cost-clocked budget polls (see `memvm`), keeping the hot path at one
//! integer compare. Shutdown drains: new jobs are rejected, queued and
//! running ones finish, then the daemon replies and stops.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bench::job::{self, JobCtl, JobError, JobSpec};
use bench::store::ArtifactStore;
use memvm::VmConfig;
use telemetry::Registry;

use crate::protocol::{reject_line, Op, Request, Response, ResponseBody};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Socket path to bind (removed on shutdown; binding fails if the path
    /// exists).
    pub socket: PathBuf,
    /// Worker threads; 0 = the machine's available parallelism.
    pub workers: usize,
    /// Maximum queued (not yet running) jobs; submissions beyond it are
    /// rejected with a `queue full` error.
    pub queue_cap: usize,
    /// Default per-job deadline for requests that do not set one.
    pub default_deadline: Option<Duration>,
    /// VM configuration jobs execute under.
    pub vm: VmConfig,
    /// Artifact-store capacity per level.
    pub store_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            socket: PathBuf::from("mi-serve.sock"),
            workers: 0,
            queue_cap: 256,
            default_deadline: Some(Duration::from_secs(30)),
            vm: VmConfig::default(),
            store_capacity: bench::store::DEFAULT_CAPACITY,
        }
    }
}

/// One client connection's shared half: the write side plus the table of
/// this connection's live (queued or running) jobs, keyed by request id —
/// the namespace `cancel` targets.
struct Conn {
    writer: Mutex<UnixStream>,
    live: Mutex<HashMap<u64, Arc<AtomicBool>>>,
}

impl Conn {
    /// Writes one response line; errors (client gone) are ignored — the
    /// reader thread notices the disconnect and cleans up. One write
    /// syscall per line (the newline is appended before writing).
    fn send_line(&self, line: &str) {
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        let mut w = self.writer.lock().unwrap();
        let _ = w.write_all(buf.as_bytes());
        let _ = w.flush();
    }

    fn send(&self, resp: &Response) {
        self.send_line(&resp.encode());
    }
}

/// What a queued entry executes: one benchmark cell or a bounded fuzz
/// case range. Both flow through the same queue, deadline, and cancel
/// machinery.
enum Work {
    Job(JobSpec),
    Fuzz { seed: u64, start: u64, cases: u64 },
}

struct QueuedJob {
    conn: Arc<Conn>,
    id: u64,
    work: Work,
    deadline: Option<Instant>,
    cancel: Arc<AtomicBool>,
}

struct State {
    queue: Mutex<VecDeque<QueuedJob>>,
    /// Wakes one worker per enqueued job (all on stop) — `notify_one`
    /// here, so an enqueue does not stampede the whole idle pool.
    work: Condvar,
    /// Wakes drainers when a job completes.
    done: Condvar,
    store: ArtifactStore,
    metrics: Mutex<Registry>,
    vm: VmConfig,
    queue_cap: usize,
    default_deadline: Option<Duration>,
    /// Set while draining: new jobs are rejected, existing ones finish.
    draining: AtomicBool,
    /// Set once drained: workers and the listener exit.
    stop: AtomicBool,
    inflight: AtomicUsize,
}

impl State {
    fn count(&self, name: &'static str, labels: &[(&str, &str)]) {
        self.metrics.lock().unwrap().counter_add(name, labels, 1);
    }

    /// The merged `mi-metrics/1` registry: job/request tallies, the
    /// artifact store's lookup counters, and live gauges.
    fn merged_metrics(&self) -> Registry {
        let mut r = self.metrics.lock().unwrap().clone();
        r.merge(&self.store.metrics());
        r.gauge_set("serve_queue_depth", &[], self.queue.lock().unwrap().len() as u64);
        r.gauge_set("serve_inflight", &[], self.inflight.load(Ordering::Relaxed) as u64);
        r.gauge_set("store_entries_total", &[], self.store.entries() as u64);
        r
    }

    /// Enqueues a job or explains why not (draining / full queue).
    fn enqueue(&self, job: QueuedJob) -> Result<(), String> {
        if self.draining.load(Ordering::Acquire) {
            return Err("server is shutting down".to_string());
        }
        let mut q = self.queue.lock().unwrap();
        if q.len() >= self.queue_cap {
            return Err(format!("queue full (cap {})", self.queue_cap));
        }
        q.push_back(job);
        drop(q);
        self.work.notify_one();
        Ok(())
    }

    /// Blocks until every queued and running job has completed.
    fn await_drained(&self) {
        let mut q = self.queue.lock().unwrap();
        loop {
            if q.is_empty() && self.inflight.load(Ordering::Acquire) == 0 {
                return;
            }
            let (guard, _) = self.done.wait_timeout(q, Duration::from_millis(50)).unwrap();
            q = guard;
        }
    }

    fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.work.notify_all();
    }
}

fn worker_loop(state: &State) {
    loop {
        let job = {
            let mut q = state.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop_front() {
                    // Claimed while still holding the queue lock, so a
                    // drainer never observes "queue empty, nothing in
                    // flight" with a job in hand.
                    state.inflight.fetch_add(1, Ordering::AcqRel);
                    break job;
                }
                if state.stop.load(Ordering::Acquire) {
                    return;
                }
                let (guard, _) = state.work.wait_timeout(q, Duration::from_millis(50)).unwrap();
                q = guard;
            }
        };

        let result = run_one(state, &job);
        let body = match result {
            Ok(result) => {
                state.count("serve_jobs", &[("outcome", "ok")]);
                ResponseBody::Ok { result }
            }
            Err(e) => {
                let outcome = match &e {
                    JobError::Timeout => "timeout",
                    JobError::Cancelled => "cancelled",
                    JobError::Rejected { .. } => "rejected",
                    JobError::Trap { .. } => "trap",
                };
                state.count("serve_jobs", &[("outcome", outcome)]);
                ResponseBody::Err(e)
            }
        };
        job.conn.send(&Response { id: job.id, body });
        job.conn.live.lock().unwrap().remove(&job.id);
        state.inflight.fetch_sub(1, Ordering::AcqRel);
        state.done.notify_all();
    }
}

/// Runs one claimed job, classifying pre-execution expiry and panics.
fn run_one(state: &State, job: &QueuedJob) -> Result<String, JobError> {
    if job.cancel.load(Ordering::Acquire) {
        return Err(JobError::Cancelled);
    }
    if job.deadline.is_some_and(|d| Instant::now() >= d) {
        return Err(JobError::Timeout);
    }
    match &job.work {
        Work::Job(spec) => {
            let ctl = JobCtl { deadline: job.deadline, interrupt: Some(Arc::clone(&job.cancel)) };
            // A panic (an internal invariant failure) must not take the
            // worker down with it; the client gets a rejection naming the
            // job.
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                job::execute(spec, &state.store, state.vm, &ctl)
            })) {
                Ok(r) => r.map(|outcome| outcome.result_json()),
                Err(_) => {
                    Err(JobError::Rejected { reason: "internal error executing job".to_string() })
                }
            }
        }
        Work::Fuzz { seed, start, cases } => run_fuzz(state, job, *seed, *start, *cases),
    }
}

/// Runs a fuzz case range, polling cancel/deadline between cases (a case
/// is the preemption granularity; each one sweeps the full oracle matrix
/// through the shared VM configuration). The result JSON is
/// deterministic for a given range: field order is frozen and no timings
/// appear.
fn run_fuzz(
    state: &State,
    job: &QueuedJob,
    seed: u64,
    start: u64,
    cases: u64,
) -> Result<String, JobError> {
    let mut failures = String::new();
    for index in start..start + cases {
        if job.cancel.load(Ordering::Acquire) {
            return Err(JobError::Cancelled);
        }
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(JobError::Timeout);
        }
        let errors = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fuzz::run_case_with(seed, index, state.vm)
        })) {
            Ok(errors) => errors,
            Err(_) => {
                return Err(JobError::Rejected {
                    reason: format!("internal error fuzzing case {index}"),
                })
            }
        };
        if !errors.is_empty() {
            if !failures.is_empty() {
                failures.push(',');
            }
            let rendered: Vec<String> = errors.iter().map(|e| bench::json::json_str(e)).collect();
            failures
                .push_str(&format!("{{\"index\":{index},\"errors\":[{}]}}", rendered.join(",")));
        }
    }
    let ok = failures.is_empty();
    Ok(format!(
        "{{\"seed\":{seed},\"start\":{start},\"cases\":{cases},\"ok\":{ok},\"failures\":[{failures}]}}"
    ))
}

/// Registers a request in the connection's live table and enqueues it,
/// replying with a rejection (and unregistering) if the queue refuses.
fn submit(state: &State, conn: &Arc<Conn>, id: u64, work: Work, deadline_ms: Option<u64>) {
    let deadline = deadline_ms
        .map(Duration::from_millis)
        .or(state.default_deadline)
        .map(|d| Instant::now() + d);
    let cancel = Arc::new(AtomicBool::new(false));
    conn.live.lock().unwrap().insert(id, Arc::clone(&cancel));
    let queued = QueuedJob { conn: Arc::clone(conn), id, work, deadline, cancel };
    if let Err(reason) = state.enqueue(queued) {
        conn.live.lock().unwrap().remove(&id);
        state.count("serve_jobs", &[("outcome", "rejected")]);
        conn.send_line(&reject_line(id, &reason));
    }
}

fn reader_loop(state: &Arc<State>, stream: UnixStream) {
    let conn = Arc::new(Conn {
        writer: Mutex::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        }),
        live: Mutex::new(HashMap::new()),
    });
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let req = match Request::decode(&line) {
            Ok(r) => r,
            Err(e) => {
                // Best-effort id recovery so the client can correlate.
                let id = bench::json::Json::parse(line.trim())
                    .ok()
                    .and_then(|v| v.get("id").and_then(bench::json::Json::as_u64))
                    .unwrap_or(0);
                conn.send_line(&reject_line(id, &format!("bad request: {e}")));
                continue;
            }
        };
        state.count("serve_requests", &[("op", req.op.name())]);
        match req.op {
            Op::Job { spec, deadline_ms } => {
                submit(state, &conn, req.id, Work::Job(spec), deadline_ms);
            }
            Op::Fuzz { seed, start, cases } => {
                // Deadline-less fuzz ranges fall back to the same default
                // as jobs; the per-case poll in `run_fuzz` enforces it.
                submit(state, &conn, req.id, Work::Fuzz { seed, start, cases }, None);
            }
            Op::Cancel { target } => {
                let found = match conn.live.lock().unwrap().get(&target) {
                    Some(flag) => {
                        flag.store(true, Ordering::Release);
                        true
                    }
                    None => false,
                };
                let result = format!("{{\"target\":{target},\"found\":{found}}}");
                conn.send(&Response { id: req.id, body: ResponseBody::Ok { result } });
            }
            Op::Metrics => {
                let result = state.merged_metrics().to_json_line();
                conn.send(&Response { id: req.id, body: ResponseBody::Ok { result } });
            }
            Op::Ping => {
                let result = "{\"pong\":true}".to_string();
                conn.send(&Response { id: req.id, body: ResponseBody::Ok { result } });
            }
            Op::Shutdown => {
                state.draining.store(true, Ordering::Release);
                state.await_drained();
                let result = "{\"drained\":true}".to_string();
                conn.send(&Response { id: req.id, body: ResponseBody::Ok { result } });
                state.request_stop();
                return;
            }
        }
    }
    // Client hung up: cancel anything it still has queued or running.
    for flag in conn.live.lock().unwrap().values() {
        flag.store(true, Ordering::Release);
    }
}

/// A running daemon. Dropping without [`Server::shutdown`] leaks the
/// threads (they exit with the process); tests and `mi bench-serve` always
/// drain explicitly.
pub struct Server {
    state: Arc<State>,
    socket: PathBuf,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// A snapshot of the daemon's merged metrics registry.
    pub fn metrics(&self) -> Registry {
        self.state.merged_metrics()
    }

    /// Blocks until the daemon stops — i.e. until some client sends a
    /// `shutdown` op — then removes the socket file. This is what the
    /// foreground `mi serve` command sits in.
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }

    /// Drains (queued and running jobs finish; new ones are rejected),
    /// stops all threads, joins them, and removes the socket file.
    pub fn shutdown(mut self) {
        self.state.draining.store(true, Ordering::Release);
        self.state.await_drained();
        self.state.request_stop();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

/// Starts the daemon: binds the socket, spawns the listener and the worker
/// pool, and returns immediately.
///
/// # Errors
///
/// Propagates socket binding failures (the path already exists, permission
/// denied, ...).
pub fn start(cfg: ServerConfig) -> io::Result<Server> {
    let listener = UnixListener::bind(&cfg.socket)?;
    listener.set_nonblocking(true)?;
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        cfg.workers
    };
    let state = Arc::new(State {
        queue: Mutex::new(VecDeque::new()),
        work: Condvar::new(),
        done: Condvar::new(),
        store: ArtifactStore::with_capacity(cfg.store_capacity),
        metrics: Mutex::new(Registry::new()),
        vm: cfg.vm,
        queue_cap: cfg.queue_cap.max(1),
        default_deadline: cfg.default_deadline,
        draining: AtomicBool::new(false),
        stop: AtomicBool::new(false),
        inflight: AtomicUsize::new(0),
    });

    let mut threads = Vec::with_capacity(workers + 1);
    for i in 0..workers {
        let state = Arc::clone(&state);
        // The interpreter recurses on deeply recursive guest programs;
        // match the driver's generous worker stacks.
        threads.push(
            std::thread::Builder::new()
                .name(format!("mi-serve-worker-{i}"))
                .stack_size(32 * 1024 * 1024)
                .spawn(move || worker_loop(&state))?,
        );
    }
    {
        let state = Arc::clone(&state);
        threads.push(std::thread::Builder::new().name("mi-serve-listener".to_string()).spawn(
            move || {
                loop {
                    if state.stop.load(Ordering::Acquire) {
                        return;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nonblocking(false);
                            let state = Arc::clone(&state);
                            // Readers exit on client disconnect or server
                            // stop; they hold only Arcs, so detaching is
                            // safe.
                            let _ = std::thread::Builder::new()
                                .name("mi-serve-reader".to_string())
                                .spawn(move || reader_loop(&state, stream));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            },
        )?);
    }
    Ok(Server { state, socket: cfg.socket, threads })
}
