//! A blocking `mi-serve/1` client over a Unix domain socket.
//!
//! Supports pipelining: submit any number of requests, then collect
//! responses as they arrive ([`Client::recv`]) or wait for a specific id
//! ([`Client::wait_for`], which buffers everything else). Job responses
//! arrive in *completion* order, not submission order.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::protocol::{Op, Request, Response};

/// A connected client.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    next_id: u64,
    pending: Vec<Response>,
}

impl Client {
    /// Connects to a daemon socket.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(path: &Path) -> io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer, next_id: 0, pending: Vec::new() })
    }

    /// Submits `op` without waiting, returning the assigned request id.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn submit(&mut self, op: Op) -> io::Result<u64> {
        self.next_id += 1;
        let id = self.next_id;
        let mut line = Request { id, op }.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Receives the next response (buffered responses first).
    ///
    /// # Errors
    ///
    /// An `UnexpectedEof` error when the server closes the connection, and
    /// an `InvalidData` error for an undecodable line.
    pub fn recv(&mut self) -> io::Result<Response> {
        if !self.pending.is_empty() {
            return Ok(self.pending.remove(0));
        }
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection"));
        }
        Response::decode(&line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Receives responses until the one for `id` arrives, buffering the
    /// rest for later [`Client::recv`] calls.
    ///
    /// # Errors
    ///
    /// As [`Client::recv`].
    pub fn wait_for(&mut self, id: u64) -> io::Result<Response> {
        if let Some(i) = self.pending.iter().position(|r| r.id == id) {
            return Ok(self.pending.remove(i));
        }
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed connection",
                ));
            }
            let resp = Response::decode(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            if resp.id == id {
                return Ok(resp);
            }
            self.pending.push(resp);
        }
    }

    /// Submits `op` and waits for its response.
    ///
    /// # Errors
    ///
    /// As [`Client::submit`] and [`Client::wait_for`].
    pub fn call(&mut self, op: Op) -> io::Result<Response> {
        let id = self.submit(op)?;
        self.wait_for(id)
    }
}
