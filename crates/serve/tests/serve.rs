//! End-to-end daemon tests: byte-identity with the in-process driver under
//! concurrent clients, deadline/cancel semantics, graceful drain, and the
//! metrics endpoint.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use bench::driver::{benchmark_programs, cell_json, paper_sweep_configs, Driver, Program};
use bench::job::{job_matrix, JobAction, JobError, JobSpec, SourceRef};
use bench::json::Json;
use serve::{Client, Op, ResponseBody, ServerConfig};

static SOCKET_SEQ: AtomicU32 = AtomicU32::new(0);

fn socket_path(tag: &str) -> PathBuf {
    let n = SOCKET_SEQ.fetch_add(1, Ordering::Relaxed);
    let p = std::env::temp_dir().join(format!("mi-serve-{}-{tag}-{n}.sock", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn start_server(tag: &str, cfg: ServerConfig) -> serve::Server {
    serve::start(ServerConfig { socket: socket_path(tag), ..cfg }).expect("start server")
}

fn tiny_programs() -> Vec<Program> {
    vec![
        Program {
            name: "sum.c".into(),
            source: r#"
                long a[8];
                long main(void) {
                    for (long i = 0; i < 8; i += 1) a[i] = i * 3;
                    long s = 0;
                    for (long i = 0; i < 8; i += 1) s += a[i];
                    print_i64(s);
                    return 0;
                }
            "#
            .into(),
        },
        Program {
            name: "heap.c".into(),
            source: r#"
                long main(void) {
                    long *p = (long*)malloc(4 * sizeof(long));
                    for (long i = 0; i < 4; i += 1) p[i] = i + 10;
                    print_i64(p[0] + p[3]);
                    return 0;
                }
            "#
            .into(),
        },
        Program {
            name: "oob.c".into(),
            source: r#"
                long main(void) {
                    long *p = (long*)malloc(8 * sizeof(long));
                    p[9] = 1;
                    print_i64(p[9]);
                    return 0;
                }
            "#
            .into(),
        },
    ]
}

fn spin_program() -> Program {
    Program {
        name: "spin.c".into(),
        source: r#"
            long main(void) {
                long s = 0;
                for (long i = 0; i < 100000000000; i += 1) s += i;
                return s;
            }
        "#
        .into(),
    }
}

/// Runs `programs` × the paper matrix through the in-process driver, then
/// replays the same job matrix through a daemon from `clients` concurrent
/// connections (each submitting in a different rotation, fully pipelined)
/// and asserts every served result is byte-identical to the driver's cell.
fn assert_byte_identity(tag: &str, programs: Vec<Program>, clients: usize) {
    let configs = paper_sweep_configs();
    let report = Driver::new(programs.clone(), configs.clone()).run();
    let expected: HashMap<(String, String), String> = report
        .cells
        .iter()
        .map(|c| {
            (
                (c.program.clone(), c.config.clone()),
                cell_json(&c.program, &c.config, &c.outcome, None),
            )
        })
        .collect();

    let specs = job_matrix(&programs, &configs);
    // The clients pipeline the whole matrix at once, so size the queue to
    // the full offered load — this test is about byte identity under
    // interleaving, not about backpressure (rejection has its own test).
    let server = start_server(
        tag,
        ServerConfig {
            default_deadline: Some(Duration::from_secs(600)),
            queue_cap: specs.len() * clients + 16,
            ..Default::default()
        },
    );
    std::thread::scope(|s| {
        for k in 0..clients {
            let specs = &specs;
            let expected = &expected;
            let socket = server.socket().to_path_buf();
            s.spawn(move || {
                let mut client = Client::connect(&socket).expect("connect");
                // Each client interleaves differently: rotate the matrix.
                let order: Vec<&JobSpec> = specs
                    .iter()
                    .cycle()
                    .skip(k * specs.len() / clients.max(1))
                    .take(specs.len())
                    .collect();
                let mut by_id: HashMap<u64, (String, String)> = HashMap::new();
                for spec in order {
                    let id = client
                        .submit(Op::Job { spec: (*spec).clone(), deadline_ms: None })
                        .expect("submit");
                    by_id.insert(id, (spec.source.name().to_string(), spec.config.to_string()));
                }
                for _ in 0..by_id.len() {
                    let resp = client.recv().expect("recv");
                    let key = by_id.remove(&resp.id).expect("known id");
                    let want = &expected[&key];
                    match resp.body {
                        ResponseBody::Ok { result } => {
                            assert_eq!(
                                &result, want,
                                "client {k}: served bytes diverge for {key:?}"
                            );
                        }
                        ResponseBody::Err(e) => {
                            panic!("client {k}: job {key:?} failed: {e:?}")
                        }
                    }
                }
            });
        }
    });
    server.shutdown();
}

#[test]
fn concurrent_clients_are_byte_identical_to_the_driver() {
    assert_byte_identity("tiny", tiny_programs(), 3);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "full corpus is slow without optimizations")]
fn full_corpus_is_byte_identical_to_the_driver() {
    // The whole benchmark suite × the 14-config paper matrix, from two
    // concurrent clients with different interleavings.
    assert_byte_identity("corpus", benchmark_programs(), 2);
}

#[test]
fn cancel_mid_queue_and_deadline_enforcement() {
    // One worker: the spinning blocker occupies it while the victim waits
    // in queue, so cancellation deterministically hits a *queued* job.
    let server = start_server(
        "cancel",
        ServerConfig {
            workers: 1,
            default_deadline: Some(Duration::from_secs(600)),
            ..Default::default()
        },
    );
    let mut client = Client::connect(server.socket()).unwrap();
    let spin = JobSpec {
        source: SourceRef::Inline { name: spin_program().name, text: spin_program().source },
        config: "baseline@O3@VectorizerStart".parse().unwrap(),
        action: JobAction::Run,
    };
    let quick = JobSpec {
        source: SourceRef::Inline {
            name: "quick.c".into(),
            text: "long main(void) { return 1; }".into(),
        },
        config: "baseline@O3@VectorizerStart".parse().unwrap(),
        action: JobAction::Run,
    };
    // Blocker: runs into its 400 ms deadline while executing.
    let blocker = client.submit(Op::Job { spec: spin.clone(), deadline_ms: Some(400) }).unwrap();
    let victim = client.submit(Op::Job { spec: quick, deadline_ms: None }).unwrap();
    let cancel = client.submit(Op::Cancel { target: victim }).unwrap();

    let ack = client.wait_for(cancel).unwrap();
    match ack.body {
        ResponseBody::Ok { result } => assert!(result.contains("\"found\":true"), "{result}"),
        other => panic!("cancel ack: {other:?}"),
    }
    assert_eq!(
        client.wait_for(blocker).unwrap().body,
        ResponseBody::Err(JobError::Timeout),
        "blocker must hit its deadline mid-execution"
    );
    assert_eq!(
        client.wait_for(victim).unwrap().body,
        ResponseBody::Err(JobError::Cancelled),
        "victim must be cancelled before it runs"
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_queued_jobs_before_stopping() {
    let server = start_server("drain", ServerConfig::default());
    let mut client = Client::connect(server.socket()).unwrap();
    let spec = JobSpec {
        source: SourceRef::Inline {
            name: "d.c".into(),
            text: "long main(void) { print_i64(5); return 0; }".into(),
        },
        config: "softbound@O3@VectorizerStart".parse().unwrap(),
        action: JobAction::Run,
    };
    let jobs: Vec<u64> = (0..3)
        .map(|_| client.submit(Op::Job { spec: spec.clone(), deadline_ms: None }).unwrap())
        .collect();
    let shutdown = client.submit(Op::Shutdown).unwrap();
    for id in jobs {
        match client.wait_for(id).unwrap().body {
            ResponseBody::Ok { result } => {
                assert!(result.contains("\"ok\": true"), "{result}")
            }
            other => panic!("queued job must complete during drain: {other:?}"),
        }
    }
    match client.wait_for(shutdown).unwrap().body {
        ResponseBody::Ok { result } => assert_eq!(result, "{\"drained\":true}"),
        other => panic!("shutdown ack: {other:?}"),
    }
    server.shutdown();
}

#[test]
fn unknown_benchmarks_and_bad_requests_are_rejected() {
    let server = start_server("reject", ServerConfig::default());
    let mut client = Client::connect(server.socket()).unwrap();
    let resp = client
        .call(Op::Job {
            spec: JobSpec {
                source: SourceRef::Benchmark { name: "no-such-benchmark".into() },
                config: "baseline@O3@VectorizerStart".parse().unwrap(),
                action: JobAction::Run,
            },
            deadline_ms: None,
        })
        .unwrap();
    match resp.body {
        ResponseBody::Err(JobError::Rejected { reason }) => {
            assert!(reason.contains("unknown benchmark"), "{reason}")
        }
        other => panic!("expected rejection: {other:?}"),
    }
    // Frontend diagnostics reject too (the job never reaches the queue's
    // VM stage).
    let resp = client
        .call(Op::Job {
            spec: JobSpec {
                source: SourceRef::Inline {
                    name: "broken.c".into(),
                    text: "long main(void) { syntax error }".into(),
                },
                config: "baseline@O3@VectorizerStart".parse().unwrap(),
                action: JobAction::Run,
            },
            deadline_ms: None,
        })
        .unwrap();
    assert!(matches!(resp.body, ResponseBody::Err(JobError::Rejected { .. })), "{:?}", resp.body);
    server.shutdown();
}

#[test]
fn profile_jobs_render_mi_profile_documents() {
    let server = start_server("profile", ServerConfig::default());
    let mut client = Client::connect(server.socket()).unwrap();
    let resp = client
        .call(Op::Job {
            spec: JobSpec {
                source: SourceRef::Inline {
                    name: "heap.c".into(),
                    text: tiny_programs()[1].source.clone(),
                },
                config: "softbound@O3@VectorizerStart".parse().unwrap(),
                action: JobAction::Profile { top: 5 },
            },
            deadline_ms: None,
        })
        .unwrap();
    match resp.body {
        ResponseBody::Ok { result } => {
            let v = Json::parse(&result).expect("result parses");
            let doc = v.get("profile").and_then(Json::as_str).expect("profile string");
            assert!(doc.contains("\"schema\": \"mi-profile/1\""), "{doc}");
            assert!(doc.contains("\"sites\": ["), "{doc}");
        }
        other => panic!("profile job failed: {other:?}"),
    }
    // Profiling a trapping cell yields the typed Trap error carrying the
    // driver-rendered report.
    let resp = client
        .call(Op::Job {
            spec: JobSpec {
                source: SourceRef::Inline {
                    name: "oob.c".into(),
                    text: tiny_programs()[2].source.clone(),
                },
                config: "softbound@O3@VectorizerStart".parse().unwrap(),
                action: JobAction::Profile { top: 5 },
            },
            deadline_ms: None,
        })
        .unwrap();
    match resp.body {
        ResponseBody::Err(JobError::Trap { report }) => {
            assert!(report.contains("\"ok\": false"), "{report}");
            assert!(report.contains("\"trap_kind\": \"violation\""), "{report}");
        }
        other => panic!("expected trap error: {other:?}"),
    }
    server.shutdown();
}

#[test]
fn fuzz_jobs_sweep_case_ranges_deterministically() {
    let server = start_server("fuzz", ServerConfig::default());
    let mut client = Client::connect(server.socket()).unwrap();
    // Seed 0 is the clean acceptance sweep: a bounded slice of it must
    // come back ok, with the frozen result shape, byte-identical on
    // resubmission.
    let first = client.call(Op::Fuzz { seed: 0, start: 0, cases: 4 }).unwrap();
    let second = client.call(Op::Fuzz { seed: 0, start: 0, cases: 4 }).unwrap();
    match (&first.body, &second.body) {
        (ResponseBody::Ok { result }, ResponseBody::Ok { result: again }) => {
            assert_eq!(result, again, "fuzz ranges must be deterministic");
            assert_eq!(result, "{\"seed\":0,\"start\":0,\"cases\":4,\"ok\":true,\"failures\":[]}");
        }
        other => panic!("fuzz job failed: {other:?}"),
    }
    // Out-of-range case counts never reach the queue.
    let resp = client.call(Op::Fuzz { seed: 0, start: 0, cases: 0 });
    assert!(resp.is_err() || matches!(resp.unwrap().body, ResponseBody::Err(_)));
    server.shutdown();
}

#[test]
fn metrics_expose_store_hits_after_warm_resubmission() {
    let server = start_server("metrics", ServerConfig::default());
    let mut client = Client::connect(server.socket()).unwrap();
    let spec = JobSpec {
        source: SourceRef::Inline {
            name: "warm.c".into(),
            text: "long main(void) { print_i64(9); return 0; }".into(),
        },
        config: "lowfat@O3@VectorizerStart".parse().unwrap(),
        action: JobAction::Run,
    };
    let first = client.call(Op::Job { spec: spec.clone(), deadline_ms: None }).unwrap();
    let second = client.call(Op::Job { spec, deadline_ms: None }).unwrap();
    // Warm results are byte-identical to cold ones.
    assert_eq!(first.body, second.body);

    let resp = client.call(Op::Metrics).unwrap();
    match resp.body {
        ResponseBody::Ok { result } => {
            assert!(!result.contains('\n'), "metrics must be newline-free on the wire");
            let v = Json::parse(&result).expect("metrics parse");
            assert_eq!(v.get("schema").and_then(Json::as_str), Some("mi-metrics/1"));
            assert!(result.contains("store_lookups"), "{result}");
            assert!(result.contains("\"outcome\": \"hit\""), "{result}");
            assert!(result.contains("serve_jobs"), "{result}");
        }
        other => panic!("metrics failed: {other:?}"),
    }
    // Ping keeps working on the same pipelined connection.
    let pong = client.call(Op::Ping).unwrap();
    assert_eq!(pong.body, ResponseBody::Ok { result: "{\"pong\":true}".into() });
    server.shutdown();
}
