//! Golden-file round-trip pinning the frozen `mi-serve/1` wire schema.
//!
//! Every request and response line in `tests/golden/mi-serve-v1.txt` must
//! decode and re-encode to exactly its own bytes. A failure here means the
//! wire format changed — which requires a schema version bump, not a
//! golden-file update.

use serve::{Request, Response};

const GOLDEN: &str = include_str!("golden/mi-serve-v1.txt");

#[test]
fn golden_lines_round_trip_byte_identically() {
    let mut requests = 0;
    let mut responses = 0;
    for (i, line) in GOLDEN.lines().enumerate() {
        let n = i + 1;
        if let Some(wire) = line.strip_prefix("> ") {
            let req = Request::decode(wire).unwrap_or_else(|e| panic!("line {n}: {e}"));
            assert_eq!(req.encode(), wire, "request on line {n} re-encodes differently");
            requests += 1;
        } else if let Some(wire) = line.strip_prefix("< ") {
            let resp = Response::decode(wire).unwrap_or_else(|e| panic!("line {n}: {e}"));
            assert_eq!(resp.encode(), wire, "response on line {n} re-encodes differently");
            responses += 1;
        }
    }
    // The transcript must keep covering every op and every error kind.
    assert_eq!(requests, 8, "golden transcript lost request coverage");
    assert_eq!(responses, 10, "golden transcript lost response coverage");
}

#[test]
fn golden_covers_every_op_and_error_kind() {
    for needle in [
        "\"op\":\"job\"",
        "\"action\":\"run\"",
        "\"action\":\"profile\"",
        "\"action\":\"compile\"",
        "\"kind\":\"benchmark\"",
        "\"kind\":\"inline\"",
        "\"op\":\"fuzz\"",
        "\"op\":\"cancel\"",
        "\"op\":\"metrics\"",
        "\"op\":\"ping\"",
        "\"op\":\"shutdown\"",
        "\"kind\":\"timeout\"",
        "\"kind\":\"cancelled\"",
        "\"kind\":\"rejected\"",
        "\"kind\":\"trap\"",
        "\"deadline_ms\":",
    ] {
        assert!(GOLDEN.contains(needle), "golden transcript no longer covers {needle}");
    }
}
