#![warn(missing_docs)]

//! Shared deterministic randomness for the test and fuzzing infrastructure.
//!
//! The container this repository builds in has no network access to
//! crates.io, so instead of `proptest`/`rand` every randomized harness in
//! the workspace draws from the same two hand-rolled generators defined
//! here:
//!
//! * [`Rng`] — an xorshift64\* generator for *host-side* case generation
//!   (property tests in `tests/props.rs`, the `fuzz` crate's program
//!   generator and mutator). Seeds fully determine the stream, so every
//!   failure is reproducible from its `(seed, case)` pair alone.
//! * [`minic_prng_next`]/[`MINIC_PRNG_C`] — the linear-congruential
//!   generator embedded *inside* mini-C benchmark programs (`cbench`),
//!   exposed on the host so tests can recompute expected workloads. Its
//!   constants are part of the benchmark definitions: changing them would
//!   change every benchmark's output and cost profile.
//!
//! Keeping both in one crate stops the workspace from growing divergent
//! copies (before this crate existed, `tests/props.rs`, `cbench`, and the
//! fuzzer each hand-rolled their own).

/// xorshift64\* — deterministic, dependency-free, full 64-bit state.
///
/// The zero state is unreachable (seeds are OR-ed with 1), so the stream
/// never collapses.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// A generator seeded with `seed` (any value; 0 is mapped to 1).
    pub fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    /// The canonical per-case generator: case `index` under root `seed`.
    ///
    /// Both the property-test harness ([`cases`]) and the fuzzer derive
    /// their per-case streams through this, so a failure report's
    /// `(seed, case)` pair replays the exact same inputs anywhere.
    pub fn for_case(seed: u64, index: u64) -> Rng {
        // Golden-ratio stride decorrelates consecutive case seeds; the
        // root seed is mixed in multiplicatively so distinct roots give
        // unrelated streams.
        Rng::new(
            0x9E3779B97F4A7C15u64
                .wrapping_mul(index.wrapping_add(1))
                .wrapping_add(seed.wrapping_mul(0x2545F4914F6CDD1D)),
        )
    }

    /// Next raw 64-bit value. (Deliberately named like the iterator
    /// method — this is the generator's primitive step, not an
    /// `Iterator` impl, which would imply an endless `Option` stream.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next() % (hi - lo)
    }

    /// Uniform in `[lo, hi)` over signed values. Panics if empty.
    pub fn irange(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (self.next() % (hi - lo) as u64) as i64
    }

    /// A fair coin.
    pub fn chance(&mut self) -> bool {
        self.next() & 1 == 1
    }

    /// True with probability `percent`/100.
    pub fn percent(&mut self, percent: u64) -> bool {
        self.range(0, 100) < percent
    }

    /// A uniformly chosen element of `items`. Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range(0, items.len() as u64) as usize]
    }
}

/// Runs `prop` over `n` deterministic cases (case index 0..n, root seed 0
/// — the historical `tests/props.rs` seeding, kept so existing property
/// tests replay the same streams).
pub fn cases(n: u64, prop: impl Fn(&mut Rng)) {
    for i in 0..n {
        let mut rng = Rng::for_case(0, i);
        prop(&mut rng);
    }
}

// ---------------------------------------------------------------------------
// The mini-C embedded PRNG (cbench workloads)
// ---------------------------------------------------------------------------

/// Host-side mirror of the LCG embedded in benchmark sources
/// ([`MINIC_PRNG_C`]): `seed = seed * 6364136223846793005 +
/// 1442695040888963407`, yielding `(seed >> 33) & 0x7FFF_FFFF`.
pub fn minic_prng_next(seed: &mut i64) -> i64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    (*seed >> 33) & 0x7FFF_FFFF
}

/// The PRNG as mini-C source, textually included in benchmark programs.
/// Must stay in lock-step with [`minic_prng_next`].
pub const MINIC_PRNG_C: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        // Distinct seeds diverge immediately (42 and 43 are the same
        // state after the |1 zero-guard, so compare against 44).
        let mut c = Rng::new(44);
        assert_ne!(xs[0], c.next());
    }

    #[test]
    fn for_case_matches_seed_and_index_exactly() {
        let a: Vec<u64> = (0..4).map(|_| Rng::for_case(7, 3).next()).collect();
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        assert_ne!(Rng::for_case(7, 3).next(), Rng::for_case(7, 4).next());
        assert_ne!(Rng::for_case(7, 3).next(), Rng::for_case(8, 3).next());
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = Rng::new(1);
        for _ in 0..10_000 {
            let lo = rng.range(0, 100);
            let hi = lo + rng.range(1, 100);
            let v = rng.range(lo, hi);
            assert!(v >= lo && v < hi);
            let iv = rng.irange(-50, 50);
            assert!((-50..50).contains(&iv));
        }
    }

    /// Loose uniformity bound: over 64 buckets × 100k draws, every bucket
    /// count stays within ±25% of the expectation. A broken mixer (e.g.
    /// low bits stuck) blows through this immediately; a healthy
    /// xorshift64* sits within ±5%.
    #[test]
    fn range_is_roughly_uniform() {
        const BUCKETS: u64 = 64;
        const DRAWS: u64 = 100_000;
        let mut counts = [0u64; BUCKETS as usize];
        let mut rng = Rng::new(0xDEADBEEF);
        for _ in 0..DRAWS {
            counts[rng.range(0, BUCKETS) as usize] += 1;
        }
        let expect = DRAWS / BUCKETS;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expect * 3 / 4 && c < expect * 5 / 4,
                "bucket {i}: {c} vs expected {expect}"
            );
        }
    }

    #[test]
    fn chance_is_roughly_fair() {
        let mut rng = Rng::new(99);
        let heads = (0..100_000).filter(|_| rng.chance()).count();
        assert!((45_000..55_000).contains(&heads), "{heads}");
    }

    #[test]
    fn minic_prng_is_deterministic_and_in_range() {
        let mut s1 = 1;
        let mut s2 = 1;
        let a: Vec<i64> = (0..16).map(|_| minic_prng_next(&mut s1)).collect();
        let b: Vec<i64> = (0..16).map(|_| minic_prng_next(&mut s2)).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (0..1 << 31).contains(&x)));
        // The C text carries the same constants the host mirror uses.
        assert!(MINIC_PRNG_C.contains("6364136223846793005"));
        assert!(MINIC_PRNG_C.contains("1442695040888963407"));
        assert!(MINIC_PRNG_C.contains("88172645463325252"));
    }
}
