//! Frontend error reporting and language-corner coverage.

fn err(src: &str) -> String {
    cfront::compile(src).unwrap_err().to_string()
}

fn ok(src: &str) -> mir::Module {
    let m = cfront::compile(src).unwrap_or_else(|e| panic!("{e}"));
    mir::verifier::verify_module(&m).unwrap();
    m
}

#[test]
fn unknown_variable() {
    let e = err("long main(void) { return nope; }");
    assert!(e.contains("unknown variable nope"), "{e}");
}

#[test]
fn unknown_function() {
    let e = err("long main(void) { return missing(1); }");
    assert!(e.contains("unknown function missing"), "{e}");
}

#[test]
fn wrong_arity() {
    let e = err("long f(long a, long b) { return a + b; } long main(void) { return f(1); }");
    assert!(e.contains("expects 2 args"), "{e}");
}

#[test]
fn unknown_struct_and_field() {
    let e = err("long main(void) { struct nope n; return 0; }");
    assert!(e.contains("unknown struct"), "{e}");
    let e = err("struct s { long a; }; long main(void) { struct s v; return v.b; }");
    assert!(e.contains("no field b"), "{e}");
}

#[test]
fn deref_of_non_pointer() {
    let e = err("long main(void) { long x = 1; return *x; }");
    assert!(e.contains("dereference of non-pointer"), "{e}");
}

#[test]
fn member_access_on_non_struct() {
    let e = err("long main(void) { long x = 1; return x.field; }");
    assert!(e.contains("member access on non-struct"), "{e}");
}

#[test]
fn arrow_on_non_pointer() {
    let e = err("struct s { long a; }; long main(void) { struct s v; return v->a; }");
    assert!(e.contains("-> on non-pointer"), "{e}");
}

#[test]
fn break_outside_loop() {
    let e = err("long main(void) { break; }");
    assert!(e.contains("break outside loop"), "{e}");
}

#[test]
fn conflicting_signatures() {
    let e = err("long f(long x); int f(long x) { return 0; } long main(void) { return 0; }");
    assert!(e.contains("conflicting signature"), "{e}");
}

#[test]
fn duplicate_definitions() {
    let e =
        err("long f(void) { return 1; } long f(void) { return 2; } long main(void) { return 0; }");
    assert!(e.contains("duplicate definition"), "{e}");
    let e = err("long g; long g; long main(void) { return 0; }");
    assert!(e.contains("duplicate global"), "{e}");
}

#[test]
fn void_variable_rejected() {
    let e = err("long main(void) { void x; return 0; }");
    assert!(e.contains("void variable"), "{e}");
}

#[test]
fn arithmetic_on_void_pointer_rejected() {
    let e = err("long main(void) { void *p = malloc(8); p = p + 1; return 0; }");
    assert!(e.contains("void*"), "{e}");
}

#[test]
fn errors_carry_line_numbers() {
    let e = cfront::compile("long main(void) {\n    long a = 1;\n    return nope;\n}").unwrap_err();
    assert_eq!(e.line, 3);
}

// --- language corners -------------------------------------------------------

#[test]
fn arrays_of_structs_with_member_arrays() {
    ok(r#"
        struct cell { long tags[4]; struct cell *link; };
        struct cell grid[8];
        long main(void) {
            for (long i = 0; i < 8; i += 1) {
                grid[i].link = &grid[(i + 1) % 8];
                for (long t = 0; t < 4; t += 1) grid[i].tags[t] = i * t;
            }
            return grid[3].link->tags[2];
        }
    "#);
}

#[test]
fn nested_conditional_expressions() {
    ok("long main(void) { long x = 5; return x > 3 ? (x > 4 ? 1 : 2) : (x > 1 ? 3 : 4); }");
}

#[test]
fn chained_comparisons_via_logic() {
    ok("long main(void) { long a = 1; long b = 2; long c = 3; return a < b && b < c || a == c; }");
}

#[test]
fn negative_array_index_through_pointer() {
    // Legal when the pointer points into the middle of an object.
    ok(r#"
        long main(void) {
            long a[10];
            a[2] = 42;
            long *p = &a[5];
            return p[-3];
        }
    "#);
}

#[test]
fn pointer_compare_in_loop_condition() {
    ok(r#"
        long main(void) {
            long a[8];
            long *end = &a[8];
            long n = 0;
            for (long *p = a; p != end; p += 1) { *p = n; n += 1; }
            return n;
        }
    "#);
}

#[test]
fn double_pointer_and_indirection() {
    ok(r#"
        long main(void) {
            long x = 9;
            long *p = &x;
            long **pp = &p;
            **pp = 10;
            return x;
        }
    "#);
}

#[test]
fn char_pointer_string_walk() {
    ok(r#"
        long main(void) {
            char buf[8];
            buf[0] = 'h'; buf[1] = 'i'; buf[2] = '\0';
            long len = 0;
            char *p = buf;
            while (*p) { len += 1; p += 1; }
            return len;
        }
    "#);
}

#[test]
fn sizeof_of_pointer_and_array_types() {
    let m = ok("long main(void) { return sizeof(long*) * 1000 + sizeof(int[10]); }");
    // Execute to check the values.
    let mut vm = memvm::Vm::new(m, memvm::VmConfig::default()).unwrap();
    let out = vm.run("main", &[]).unwrap();
    assert_eq!(out.ret.unwrap().as_int(), 8 * 1000 + 40);
}
