//! End-to-end tests: compile mini-C, optimize, interpret, compare results.

use memvm::{Vm, VmConfig};
use mir::pipeline::{OptLevel, Pipeline};

/// Compiles and runs at the given optimization level; returns (ret, output).
fn run_at(src: &str, opt: OptLevel) -> (i64, Vec<String>) {
    let mut module = cfront::compile(src).unwrap_or_else(|e| panic!("compile error: {e}"));
    mir::verifier::verify_module(&module)
        .unwrap_or_else(|e| panic!("verify: {e}\n{}", mir::printer::print_module(&module)));
    Pipeline::new(opt).run(&mut module);
    mir::verifier::verify_module(&module).unwrap_or_else(|e| {
        panic!("verify after opt: {e}\n{}", mir::printer::print_module(&module))
    });
    let mut vm = Vm::new(module, VmConfig::default()).unwrap();
    let out = vm.run("main", &[]).unwrap_or_else(|t| panic!("trap: {t}"));
    (out.ret.map(|v| v.as_int() as i64).unwrap_or(0), out.output)
}

/// Runs at O0 and O3 and checks both agree with `expected`.
fn expect(src: &str, expected: i64) {
    let (r0, o0) = run_at(src, OptLevel::O0);
    let (r3, o3) = run_at(src, OptLevel::O3);
    assert_eq!(r0, expected, "O0 result");
    assert_eq!(r3, expected, "O3 result");
    assert_eq!(o0, o3, "output must be optimization-independent");
}

#[test]
fn arithmetic_and_precedence() {
    expect("long main(void) { return 2 + 3 * 4 - 6 / 2; }", 11);
}

#[test]
fn integer_widths_wrap() {
    expect(
        r#"
        long main(void) {
            char c = 120;
            c = c + 10;     /* wraps to -126 */
            return c;
        }
    "#,
        -126,
    );
}

#[test]
fn loops_and_locals() {
    expect(
        r#"
        long main(void) {
            long s = 0;
            for (int i = 1; i <= 100; i += 1) s += i;
            return s;
        }
    "#,
        5050,
    );
}

#[test]
fn while_break_continue() {
    expect(
        r#"
        long main(void) {
            long s = 0;
            long i = 0;
            while (1) {
                i = i + 1;
                if (i > 10) break;
                if (i % 2 == 0) continue;
                s = s + i;   /* 1+3+5+7+9 */
            }
            return s;
        }
    "#,
        25,
    );
}

#[test]
fn recursion() {
    expect(
        r#"
        long fib(long n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        long main(void) { return fib(15); }
    "#,
        610,
    );
}

#[test]
fn arrays_and_pointers() {
    expect(
        r#"
        long main(void) {
            long a[8];
            long *p = a;
            for (int i = 0; i < 8; i += 1) p[i] = i * i;
            long *q = &a[3];
            return *q + a[7];   /* 9 + 49 */
        }
    "#,
        58,
    );
}

#[test]
fn pointer_arithmetic_and_difference() {
    expect(
        r#"
        long main(void) {
            int a[10];
            int *p = a + 2;
            int *q = p + 5;
            return q - a;   /* 7 elements */
        }
    "#,
        7,
    );
}

#[test]
fn structs_members_and_arrow() {
    expect(
        r#"
        struct point { long x; long y; };
        struct rect { struct point lo; struct point hi; };
        long area(struct rect *r) {
            return (r->hi.x - r->lo.x) * (r->hi.y - r->lo.y);
        }
        long main(void) {
            struct rect r;
            r.lo.x = 1; r.lo.y = 2;
            r.hi.x = 5; r.hi.y = 10;
            return area(&r);
        }
    "#,
        32,
    );
}

#[test]
fn struct_assignment_copies() {
    expect(
        r#"
        struct pair { long a; long b; };
        long main(void) {
            struct pair p;
            struct pair q;
            p.a = 7; p.b = 8;
            q = p;
            p.a = 0;
            return q.a * 10 + q.b;
        }
    "#,
        78,
    );
}

#[test]
fn linked_list_on_heap() {
    expect(
        r#"
        struct node { long value; struct node *next; };
        long main(void) {
            struct node *head = (struct node*)0;
            for (long i = 1; i <= 5; i += 1) {
                struct node *n = (struct node*)malloc(sizeof(struct node));
                n->value = i;
                n->next = head;
                head = n;
            }
            long s = 0;
            while (head) {
                s = s * 10 + head->value;
                head = head->next;
            }
            return s;   /* 54321 */
        }
    "#,
        54321,
    );
}

#[test]
fn doubles_and_conversions() {
    expect(
        r#"
        long main(void) {
            double x = 1.5;
            double y = x * 4.0 + 1.0;   /* 7.0 */
            int i = (int)y;
            double z = i / 2;            /* int division: 3 */
            return (long)(y + z);        /* 10 */
        }
    "#,
        10,
    );
}

#[test]
fn logical_short_circuit() {
    expect(
        r#"
        long g = 0;
        long bump(void) { g = g + 1; return 1; }
        long main(void) {
            long a = 0 && bump();   /* bump not called */
            long b = 1 || bump();   /* bump not called */
            long c = 1 && bump();   /* called */
            return g * 100 + a * 10 + b + c;  /* 1*100 + 0 + 1 + 1 */
        }
    "#,
        102,
    );
}

#[test]
fn conditional_operator() {
    expect(
        r#"
        long max(long a, long b) { return a > b ? a : b; }
        long main(void) { return max(3, 9) * max(10, 2); }
    "#,
        90,
    );
}

#[test]
fn conditional_with_side_effects_evaluates_one_arm() {
    expect(
        r#"
        long g = 0;
        long inc(long v) { g = g + 1; return v; }
        long main(void) {
            long r = 1 ? inc(5) : inc(7);
            return g * 10 + r;
        }
    "#,
        15,
    );
}

#[test]
fn globals_and_functions() {
    expect(
        r#"
        long counter = 0;
        int table[16];
        void tick(void) { counter += 1; }
        long main(void) {
            for (int i = 0; i < 16; i += 1) table[i] = i;
            tick(); tick(); tick();
            return counter * 100 + table[5];
        }
    "#,
        305,
    );
}

#[test]
fn char_and_shift_ops() {
    expect(
        r#"
        long main(void) {
            long x = 'A';               /* 65 */
            long y = (x << 2) | 3;      /* 263 */
            long z = y >> 1;            /* 131 */
            return z ^ 2;               /* 129 */
        }
    "#,
        129,
    );
}

#[test]
fn sizeof_values() {
    expect(
        r#"
        struct s { char c; long l; int i; };
        long main(void) {
            return sizeof(char) + sizeof(int) * 10 + sizeof(long) * 100
                 + sizeof(double) * 1000 + sizeof(struct s) * 10000;
        }
    "#,
        1 + 40 + 800 + 8000 + 240000,
    );
}

#[test]
fn multidim_arrays() {
    expect(
        r#"
        int grid[4][8];
        long main(void) {
            for (int i = 0; i < 4; i += 1)
                for (int j = 0; j < 8; j += 1)
                    grid[i][j] = i * 8 + j;
            return grid[3][7];
        }
    "#,
        31,
    );
}

#[test]
fn memcpy_via_struct_and_print() {
    let (ret, output) = run_at(
        r#"
        long main(void) {
            print_i64(42);
            print_i64(-7);
            print_f64(2.5);
            return 0;
        }
    "#,
        OptLevel::O3,
    );
    assert_eq!(ret, 0);
    assert_eq!(output, vec!["42", "-7", "2.500000"]);
}

#[test]
fn inttoptr_roundtrip_works_uninstrumented() {
    // The §4.4 pattern: cast a pointer to long and back, then dereference.
    expect(
        r#"
        long main(void) {
            long *p = (long*)malloc(16);
            *p = 99;
            long addr = (long)p;
            long *q = (long*)addr;
            return *q;
        }
    "#,
        99,
    );
}

#[test]
fn function_declaration_then_definition() {
    expect(
        r#"
        long helper(long x);
        long main(void) { return helper(4); }
        long helper(long x) { return x * x; }
    "#,
        16,
    );
}

#[test]
fn negative_numbers_and_unary() {
    expect(
        r#"
        long main(void) {
            long a = -5;
            long b = !a;        /* 0 */
            long c = !b;        /* 1 */
            long d = ~0;        /* -1 */
            return a * 100 + b * 10 + c + d;  /* -500 + 0 + 1 - 1 */
        }
    "#,
        -500,
    );
}

#[test]
fn comparison_chains() {
    expect(
        r#"
        long main(void) {
            long n = 0;
            for (long i = 0; i < 20; i += 1) {
                if (i >= 5 && i <= 10 || i == 15) n += 1;
            }
            return n;  /* 6 + 1 */
        }
    "#,
        7,
    );
}

#[test]
fn o3_actually_optimizes() {
    let src = r#"
        long main(void) {
            long s = 0;
            for (int i = 0; i < 50; i += 1) s += i;
            return s;
        }
    "#;
    let mut m0 = cfront::compile(src).unwrap();
    Pipeline::new(OptLevel::O0).run(&mut m0);
    let mut m3 = cfront::compile(src).unwrap();
    Pipeline::new(OptLevel::O3).run(&mut m3);
    let count =
        |m: &mir::Module| -> usize { m.functions.iter().map(|f| f.live_instr_count()).sum() };
    assert!(count(&m3) < count(&m0), "O3 ({}) should shrink O0 ({})", count(&m3), count(&m0));
    // And all memory traffic for the locals is gone.
    let mem_ops = m3
        .functions
        .iter()
        .flat_map(|f| {
            f.blocks.iter().flat_map(|b| b.instrs.iter().map(|&i| &f.instrs[i.index()].kind))
        })
        .filter(|k| k.accesses_memory())
        .count();
    assert_eq!(mem_ops, 0);
}

#[test]
fn uninstrumented_marker_propagates() {
    let m = cfront::compile(
        "uninstrumented long lib(long x) { return x; } long main(void) { return lib(3); }",
    )
    .unwrap();
    assert!(m.function_by_name("lib").unwrap().1.attrs.uninstrumented);
    assert!(!m.function_by_name("main").unwrap().1.attrs.uninstrumented);
}

#[test]
fn hidden_size_global_attrs() {
    let m = cfront::compile(
        "__hidden_size int arr[64];\n__libglobal int libg[8];\nlong main(void){ return 0; }",
    )
    .unwrap();
    let (_, g) = m.global_by_name("arr").unwrap();
    assert!(g.attrs.size_unknown);
    assert_eq!(g.ty.size_of(), 256, "real size stays visible to the loader");
    assert!(m.global_by_name("libg").unwrap().1.attrs.uninstrumented_lib);
}

#[test]
fn compound_assignment_operators() {
    expect(
        r#"
        long main(void) {
            long x = 10;
            x += 5; x -= 3; x *= 4; x /= 6;  /* ((10+5-3)*4)/6 = 8 */
            return x;
        }
    "#,
        8,
    );
}

#[test]
fn byte_level_access() {
    expect(
        r#"
        long main(void) {
            long v = 0x0102030405060708;
            char *bytes = (char*)&v;
            return bytes[0] + bytes[7] * 100;  /* little endian: 8 + 1*100 */
        }
    "#,
        108,
    );
}
