//! Lowering from the mini-C AST to [`mir`].
//!
//! Classic straightforward codegen: every local lives in an `alloca` and is
//! promoted to SSA later by the pipeline's `mem2reg` — exactly clang's
//! strategy, which matters for the paper's pipeline experiments (§5.5).

use std::collections::BTreeMap;

use mir::builder::{FunctionBuilder, ModuleBuilder};
use mir::ids::{BlockId, GlobalId};
use mir::instr::{BinOp, CastOp, FcmpPred, IcmpPred, Operand};
use mir::module::{Effect, GlobalAttrs, Module};
use mir::types::Type;

use crate::ast::*;
use crate::CError;

/// Lowers a parsed translation unit to a module.
///
/// # Errors
///
/// Returns a [`CError`] on semantic errors (unknown names, bad types, ...).
pub fn lower(unit: &Unit) -> Result<Module, CError> {
    let mut structs = BTreeMap::new();
    for s in &unit.structs {
        if structs.insert(s.name.clone(), s.fields.clone()).is_some() {
            return Err(CError::new(s.line, format!("duplicate struct {}", s.name)));
        }
    }

    let env = Env::build(unit, structs)?;
    let mut mb = ModuleBuilder::new("cfront");

    // Builtins available to every program.
    mb.host("malloc", vec![Type::I64], Type::Ptr, Effect::Effectful);
    mb.host("calloc", vec![Type::I64, Type::I64], Type::Ptr, Effect::Effectful);
    mb.host("free", vec![Type::Ptr], Type::Void, Effect::Effectful);
    mb.host("print_i64", vec![Type::I64], Type::Void, Effect::Effectful);
    mb.host("print_f64", vec![Type::F64], Type::Void, Effect::Effectful);
    mb.host("abort", vec![], Type::Void, Effect::Effectful);

    // Globals.
    for g in &unit.globals {
        let ty = env.mty(&g.ty, g.line)?;
        let attrs = GlobalAttrs {
            external: g.is_extern,
            size_unknown: g.hidden_size || (g.is_extern && matches!(g.ty, CType::Array(_, 0))),
            uninstrumented_lib: g.lib_global,
            lowfat: false,
        };
        match &g.init {
            None => {
                mb.global_with_attrs(g.name.clone(), ty, attrs);
            }
            Some(e) => {
                let bytes = const_init_bytes(e, &g.ty, &env)?;
                let gid = mb.global_with_attrs(g.name.clone(), ty, attrs);
                if let mir::module::Init::Zero = mb.module_mut().globals[gid.index()].init {
                    mb.module_mut().globals[gid.index()].init = mir::module::Init::Bytes(bytes);
                }
            }
        }
    }

    // Functions: prefer definitions over forward declarations, emit each
    // name once.
    let mut emitted: BTreeMap<&str, bool> = BTreeMap::new();
    let mut order: Vec<&CFunction> = Vec::new();
    for f in &unit.functions {
        match (emitted.get(f.name.as_str()), f.body.is_some()) {
            (Some(true), true) => {
                return Err(CError::new(f.line, format!("duplicate definition of {}", f.name)));
            }
            (Some(_), false) => continue,
            (Some(false), true) => {
                // Replace the declaration-only entry with the definition.
                order.retain(|p| p.name != f.name);
            }
            (None, _) => {}
        }
        emitted.insert(f.name.as_str(), f.body.is_some());
        order.push(f);
    }
    for f in order {
        let ret = env.mty(&f.ret, f.line)?;
        let params: Vec<(&str, Type)> = f
            .params
            .iter()
            .map(|p| Ok((p.name.as_str(), env.mty(&p.ty, f.line)?)))
            .collect::<Result<_, CError>>()?;
        match &f.body {
            None => mb.declare_function(f.name.clone(), params, ret),
            Some(body) => {
                let mut fb = mb.function(f.name.clone(), params, ret);
                if f.uninstrumented {
                    fb.set_uninstrumented();
                }
                let mut cg = FnCg {
                    fb,
                    env: &env,
                    scopes: vec![BTreeMap::new()],
                    ret_ty: f.ret.clone(),
                    loops: vec![],
                };
                // Spill parameters to stack slots (mem2reg will clean up).
                cg.fb.set_line(f.line as u32);
                for (i, p) in f.params.iter().enumerate() {
                    let mty = cg.env.mty(&p.ty, f.line)?;
                    let slot = cg.fb.alloca(mty.clone());
                    let arg = cg.fb.param(i);
                    cg.fb.store(mty, arg, slot.clone());
                    cg.scopes.last_mut().unwrap().insert(p.name.clone(), (slot, p.ty.clone()));
                }
                for stmt in body {
                    cg.stmt(stmt)?;
                }
                if !cg.fb.is_terminated() {
                    let ret_val = match &f.ret {
                        CType::Void => None,
                        CType::Double => Some(Operand::ConstFloat(0.0)),
                        CType::Ptr(_) => Some(Operand::Null),
                        _ => Some(Operand::ConstInt { ty: env.mty(&f.ret, f.line)?, value: 0 }),
                    };
                    cg.fb.ret(ret_val);
                }
                cg.fb.finish();
            }
        }
    }
    Ok(mb.finish())
}

/// Evaluates a constant initializer to little-endian bytes of `ty`.
fn const_init_bytes(e: &Expr, ty: &CType, env: &Env) -> Result<Vec<u8>, CError> {
    fn const_int(e: &Expr) -> Option<i64> {
        match &e.kind {
            ExprKind::IntLit(v) => Some(*v),
            ExprKind::Unary(UnaryOp::Neg, inner) => const_int(inner).map(|v| -v),
            ExprKind::Cast(_, inner) => const_int(inner),
            _ => None,
        }
    }
    fn const_float(e: &Expr) -> Option<f64> {
        match &e.kind {
            ExprKind::FloatLit(v) => Some(*v),
            ExprKind::Unary(UnaryOp::Neg, inner) => const_float(inner).map(|v| -v),
            _ => None,
        }
    }
    let size = env.size_of(ty, e.line)? as usize;
    if *ty == CType::Double {
        let v = const_float(e)
            .or_else(|| const_int(e).map(|i| i as f64))
            .ok_or_else(|| CError::new(e.line, "global initializer must be a constant"))?;
        return Ok(v.to_bits().to_le_bytes().to_vec());
    }
    let v =
        const_int(e).ok_or_else(|| CError::new(e.line, "global initializer must be a constant"))?;
    Ok(v.to_le_bytes()[..size].to_vec())
}

/// Module-level environment: struct layouts, globals, function signatures.
struct Env {
    structs: BTreeMap<String, Vec<(String, CType)>>,
    globals: BTreeMap<String, (GlobalId, CType)>,
    funcs: BTreeMap<String, (Vec<CType>, CType)>,
}

impl Env {
    fn build(unit: &Unit, structs: BTreeMap<String, Vec<(String, CType)>>) -> Result<Env, CError> {
        let mut globals = BTreeMap::new();
        for (i, g) in unit.globals.iter().enumerate() {
            if globals.insert(g.name.clone(), (GlobalId::new(i), g.ty.clone())).is_some() {
                return Err(CError::new(g.line, format!("duplicate global {}", g.name)));
            }
        }
        let mut funcs: BTreeMap<String, (Vec<CType>, CType)> = BTreeMap::new();
        // Builtins.
        let vp = CType::Void.ptr_to();
        funcs.insert("malloc".into(), (vec![CType::Long], vp.clone()));
        funcs.insert("calloc".into(), (vec![CType::Long, CType::Long], vp.clone()));
        funcs.insert("free".into(), (vec![vp.clone()], CType::Void));
        // memcpy/memset lower to the mir intrinsics (not host calls), the
        // same instructions struct assignment produces — so user-level
        // bulk copies get the paper's memcpy metadata-propagation
        // treatment (§4.5) instead of looking like opaque library calls.
        funcs.insert("memcpy".into(), (vec![vp.clone(), vp.clone(), CType::Long], CType::Void));
        funcs.insert("memset".into(), (vec![vp, CType::Long, CType::Long], CType::Void));
        funcs.insert("print_i64".into(), (vec![CType::Long], CType::Void));
        funcs.insert("print_f64".into(), (vec![CType::Double], CType::Void));
        funcs.insert("abort".into(), (vec![], CType::Void));
        for f in &unit.functions {
            let sig = (f.params.iter().map(|p| p.ty.clone()).collect(), f.ret.clone());
            if let Some(prev) = funcs.get(&f.name) {
                if *prev != sig {
                    return Err(CError::new(
                        f.line,
                        format!("conflicting signature for {}", f.name),
                    ));
                }
            }
            funcs.insert(f.name.clone(), sig);
        }
        Ok(Env { structs, globals, funcs })
    }

    /// Maps a C type to a mir type.
    fn mty(&self, ty: &CType, line: usize) -> Result<Type, CError> {
        Ok(match ty {
            CType::Void => Type::Void,
            CType::Char => Type::I8,
            CType::Short => Type::I16,
            CType::Int => Type::I32,
            CType::Long => Type::I64,
            CType::Double => Type::F64,
            CType::Ptr(_) => Type::Ptr,
            CType::Array(elem, n) => Type::array(self.mty(elem, line)?, *n),
            CType::Struct(name) => {
                let fields = self
                    .structs
                    .get(name)
                    .ok_or_else(|| CError::new(line, format!("unknown struct {name}")))?;
                Type::structure(
                    fields.iter().map(|(_, t)| self.mty(t, line)).collect::<Result<Vec<_>, _>>()?,
                )
            }
        })
    }

    fn size_of(&self, ty: &CType, line: usize) -> Result<u64, CError> {
        Ok(self.mty(ty, line)?.size_of())
    }
}

/// A typed value: operand plus its C type. Aggregates (arrays after decay,
/// structs) are represented by their address.
#[derive(Clone, Debug)]
struct TV {
    op: Operand,
    ty: CType,
}

struct FnCg<'a, 'm> {
    fb: FunctionBuilder<'m>,
    env: &'a Env,
    scopes: Vec<BTreeMap<String, (Operand, CType)>>,
    ret_ty: CType,
    /// (continue target, break target) stack.
    loops: Vec<(BlockId, BlockId)>,
}

impl FnCg<'_, '_> {
    fn err(&self, line: usize, msg: impl Into<String>) -> CError {
        CError::new(line, msg.into())
    }

    fn lookup(&self, name: &str) -> Option<(Operand, CType, bool)> {
        for scope in self.scopes.iter().rev() {
            if let Some((op, ty)) = scope.get(name) {
                return Some((op.clone(), ty.clone(), false));
            }
        }
        self.env.globals.get(name).map(|(gid, ty)| (Operand::GlobalAddr(*gid), ty.clone(), true))
    }

    /// If the current block is already terminated (break/return), emit the
    /// rest into a fresh unreachable block.
    fn ensure_open(&mut self) {
        if self.fb.is_terminated() {
            let b = self.fb.new_block("dead");
            self.fb.switch_to(b);
        }
    }

    // ----- statements -----

    fn stmt(&mut self, s: &Stmt) -> Result<(), CError> {
        self.ensure_open();
        match s {
            Stmt::Decl { name, ty, init, line } => {
                let mty = self.env.mty(ty, *line)?;
                if mty == Type::Void {
                    return Err(self.err(*line, "void variable"));
                }
                self.fb.set_line(*line as u32);
                let slot = self.entry_alloca(mty);
                if let Some(e) = init {
                    let v = self.rvalue(e)?;
                    self.store_converted(v, &slot, ty, *line)?;
                }
                self.scopes.last_mut().unwrap().insert(name.clone(), (slot, ty.clone()));
                Ok(())
            }
            Stmt::Expr(e) => {
                self.rvalue(e)?;
                Ok(())
            }
            Stmt::Block(stmts) => {
                self.scopes.push(BTreeMap::new());
                for s in stmts {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::If { cond, then_branch, else_branch } => {
                let c = self.cond_value(cond)?;
                let then_bb = self.fb.new_block("if.then");
                let join = self.fb.new_block("if.join");
                let else_bb =
                    if else_branch.is_some() { self.fb.new_block("if.else") } else { join };
                self.fb.cond_br(c, then_bb, else_bb);
                self.fb.switch_to(then_bb);
                self.stmt(then_branch)?;
                if !self.fb.is_terminated() {
                    self.fb.br(join);
                }
                if let Some(eb) = else_branch {
                    self.fb.switch_to(else_bb);
                    self.stmt(eb)?;
                    if !self.fb.is_terminated() {
                        self.fb.br(join);
                    }
                }
                self.fb.switch_to(join);
                Ok(())
            }
            Stmt::While { cond, body } => {
                let header = self.fb.new_block("while.header");
                let body_bb = self.fb.new_block("while.body");
                let exit = self.fb.new_block("while.exit");
                self.fb.br(header);
                self.fb.switch_to(header);
                let c = self.cond_value(cond)?;
                self.fb.cond_br(c, body_bb, exit);
                self.fb.switch_to(body_bb);
                self.loops.push((header, exit));
                self.stmt(body)?;
                self.loops.pop();
                if !self.fb.is_terminated() {
                    self.fb.br(header);
                }
                self.fb.switch_to(exit);
                Ok(())
            }
            Stmt::For { init, cond, step, body } => {
                self.scopes.push(BTreeMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let header = self.fb.new_block("for.header");
                let body_bb = self.fb.new_block("for.body");
                let step_bb = self.fb.new_block("for.step");
                let exit = self.fb.new_block("for.exit");
                self.fb.br(header);
                self.fb.switch_to(header);
                match cond {
                    Some(c) => {
                        let cv = self.cond_value(c)?;
                        self.fb.cond_br(cv, body_bb, exit);
                    }
                    None => self.fb.br(body_bb),
                }
                self.fb.switch_to(body_bb);
                self.loops.push((step_bb, exit));
                self.stmt(body)?;
                self.loops.pop();
                if !self.fb.is_terminated() {
                    self.fb.br(step_bb);
                }
                self.fb.switch_to(step_bb);
                if let Some(s) = step {
                    self.rvalue(s)?;
                }
                self.fb.br(header);
                self.fb.switch_to(exit);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return { value, line } => {
                self.fb.set_line(*line as u32);
                match (value, self.ret_ty.clone()) {
                    (None, CType::Void) => self.fb.ret(None),
                    (Some(e), rt) => {
                        let v = self.rvalue(e)?;
                        let v = self.convert(v, &rt, *line)?;
                        self.fb.ret(Some(v.op));
                    }
                    (None, _) => return Err(self.err(*line, "return without value")),
                }
                Ok(())
            }
            Stmt::Break { line } => {
                let (_, exit) =
                    *self.loops.last().ok_or_else(|| self.err(*line, "break outside loop"))?;
                self.fb.br(exit);
                Ok(())
            }
            Stmt::Continue { line } => {
                let (cont, _) =
                    *self.loops.last().ok_or_else(|| self.err(*line, "continue outside loop"))?;
                self.fb.br(cont);
                Ok(())
            }
        }
    }

    // ----- expressions -----

    /// Loads the value at `addr` of type `ty`, applying aggregate
    /// conventions (arrays decay to pointers, structs stay addresses).
    fn load_value(&mut self, addr: Operand, ty: &CType, line: usize) -> Result<TV, CError> {
        match ty {
            CType::Array(elem, _) => Ok(TV { op: addr, ty: elem.ptr_to() }),
            CType::Struct(_) => Ok(TV { op: addr, ty: ty.clone() }),
            CType::Void => Err(self.err(line, "load of void")),
            _ => {
                let mty = self.env.mty(ty, line)?;
                Ok(TV { op: self.fb.load(mty, addr), ty: ty.clone() })
            }
        }
    }

    fn lvalue(&mut self, e: &Expr) -> Result<(Operand, CType), CError> {
        self.fb.set_line(e.line as u32);
        match &e.kind {
            ExprKind::Ident(name) => {
                let (addr, ty, _) = self
                    .lookup(name)
                    .ok_or_else(|| self.err(e.line, format!("unknown variable {name}")))?;
                Ok((addr, ty))
            }
            ExprKind::Deref(inner) => {
                let p = self.rvalue(inner)?;
                match p.ty {
                    CType::Ptr(pointee) => Ok((p.op, *pointee)),
                    other => Err(self.err(e.line, format!("dereference of non-pointer {other:?}"))),
                }
            }
            ExprKind::Index(arr, idx) => {
                let base = self.rvalue(arr)?; // arrays decay to pointers
                let CType::Ptr(elem) = base.ty else {
                    return Err(self.err(e.line, "subscript of non-pointer"));
                };
                let i = self.rvalue(idx)?;
                let i = self.convert(i, &CType::Long, e.line)?;
                let mty = self.env.mty(&elem, e.line)?;
                let addr = self.fb.gep(mty, base.op, vec![i.op]);
                Ok((addr, *elem))
            }
            ExprKind::Member(inner, field) => {
                let (addr, ty) = self.lvalue(inner)?;
                self.member_addr(addr, &ty, field, e.line)
            }
            ExprKind::Arrow(inner, field) => {
                let p = self.rvalue(inner)?;
                let CType::Ptr(pointee) = p.ty else {
                    return Err(self.err(e.line, "-> on non-pointer"));
                };
                self.member_addr(p.op, &pointee, field, e.line)
            }
            _ => Err(self.err(e.line, "expression is not an lvalue")),
        }
    }

    fn member_addr(
        &mut self,
        addr: Operand,
        ty: &CType,
        field: &str,
        line: usize,
    ) -> Result<(Operand, CType), CError> {
        let CType::Struct(sname) = ty else {
            return Err(self.err(line, format!("member access on non-struct {ty:?}")));
        };
        let fields = self
            .env
            .structs
            .get(sname)
            .ok_or_else(|| self.err(line, format!("unknown struct {sname}")))?;
        let idx = fields
            .iter()
            .position(|(n, _)| n == field)
            .ok_or_else(|| self.err(line, format!("struct {sname} has no field {field}")))?;
        let fty = fields[idx].1.clone();
        let smty = self.env.mty(ty, line)?;
        let faddr = self.fb.gep(smty, addr, vec![Operand::i64(0), Operand::i32(idx as i32)]);
        Ok((faddr, fty))
    }

    fn rvalue(&mut self, e: &Expr) -> Result<TV, CError> {
        let line = e.line;
        self.fb.set_line(line as u32);
        match &e.kind {
            ExprKind::IntLit(v) => {
                if i32::try_from(*v).is_ok() {
                    Ok(TV { op: Operand::i32(*v as i32), ty: CType::Int })
                } else {
                    Ok(TV { op: Operand::i64(*v), ty: CType::Long })
                }
            }
            ExprKind::FloatLit(v) => Ok(TV { op: Operand::ConstFloat(*v), ty: CType::Double }),
            ExprKind::Ident(_)
            | ExprKind::Deref(_)
            | ExprKind::Index(_, _)
            | ExprKind::Member(_, _)
            | ExprKind::Arrow(_, _) => {
                let (addr, ty) = self.lvalue(e)?;
                self.load_value(addr, &ty, line)
            }
            ExprKind::AddrOf(inner) => {
                let (addr, ty) = self.lvalue(inner)?;
                Ok(TV { op: addr, ty: ty.ptr_to() })
            }
            ExprKind::Unary(op, inner) => self.unary(*op, inner, line),
            ExprKind::Binary(op, a, b) => self.binary(*op, a, b, line),
            ExprKind::LogicalAnd(a, b) => self.logical(a, b, true, line),
            ExprKind::LogicalOr(a, b) => self.logical(a, b, false, line),
            ExprKind::Conditional(c, a, b) => self.conditional(c, a, b, line),
            ExprKind::Assign(lhs, rhs) => {
                let (addr, lty) = self.lvalue(lhs)?;
                let v = self.rvalue(rhs)?;
                self.store_converted(v.clone(), &addr, &lty, line)?;
                // The assignment's value, already converted.
                let out = self.convert(v, &lty, line)?;
                Ok(out)
            }
            ExprKind::CompoundAssign(op, lhs, rhs) => {
                let (addr, lty) = self.lvalue(lhs)?;
                let cur = self.load_value(addr.clone(), &lty, line)?;
                let r = self.rvalue(rhs)?;
                let res = self.apply_binary(*op, cur, r, line)?;
                self.store_converted(res.clone(), &addr, &lty, line)?;
                self.convert(res, &lty, line)
            }
            ExprKind::Call(callee, args) => {
                let ExprKind::Ident(name) = &callee.kind else {
                    return Err(self.err(line, "only direct calls are supported"));
                };
                let (param_tys, ret) = self
                    .env
                    .funcs
                    .get(name)
                    .ok_or_else(|| self.err(line, format!("unknown function {name}")))?
                    .clone();
                if param_tys.len() != args.len() {
                    return Err(self.err(
                        line,
                        format!("{name} expects {} args, got {}", param_tys.len(), args.len()),
                    ));
                }
                let mut ops = Vec::with_capacity(args.len());
                for (a, pt) in args.iter().zip(&param_tys) {
                    let v = self.rvalue(a)?;
                    let v = self.convert(v, pt, line)?;
                    ops.push(v.op);
                }
                // Intrinsics with dedicated mir instructions.
                if name == "memcpy" {
                    let len = ops.pop().unwrap();
                    let src = ops.pop().unwrap();
                    let dst = ops.pop().unwrap();
                    self.fb.memcpy(dst, src, len);
                    return Ok(TV { op: Operand::i64(0), ty: CType::Void });
                }
                if name == "memset" {
                    let len = ops.pop().unwrap();
                    let byte = ops.pop().unwrap();
                    let dst = ops.pop().unwrap();
                    self.fb.memset(dst, byte, len);
                    return Ok(TV { op: Operand::i64(0), ty: CType::Void });
                }
                let rmty = self.env.mty(&ret, line)?;
                let r = self.fb.call(name.clone(), rmty, ops);
                Ok(TV { op: r, ty: ret })
            }
            ExprKind::Cast(to, inner) => {
                let v = self.rvalue(inner)?;
                self.cast(v, to, line)
            }
            ExprKind::SizeofType(ty) => {
                let sz = self.env.size_of(ty, line)?;
                Ok(TV { op: Operand::i64(sz as i64), ty: CType::Long })
            }
        }
    }

    fn unary(&mut self, op: UnaryOp, inner: &Expr, line: usize) -> Result<TV, CError> {
        match op {
            UnaryOp::Neg => {
                let v = self.rvalue(inner)?;
                if v.ty == CType::Double {
                    let r = self.fb.bin(BinOp::FSub, Type::F64, Operand::ConstFloat(0.0), v.op);
                    Ok(TV { op: r, ty: CType::Double })
                } else {
                    let v = self.promote(v, line)?;
                    let mty = self.env.mty(&v.ty, line)?;
                    let zero = Operand::ConstInt { ty: mty.clone(), value: 0 };
                    let r = self.fb.sub(mty, zero, v.op);
                    Ok(TV { op: r, ty: v.ty })
                }
            }
            UnaryOp::Not => {
                let c = self.cond_value_tv(inner)?;
                // !x: x == 0, as int.
                let one = Operand::bool(true);
                let inv = self.fb.bin(BinOp::Xor, Type::I1, c, one);
                let r = self.fb.cast(CastOp::Zext, inv, Type::I1, Type::I32);
                Ok(TV { op: r, ty: CType::Int })
            }
            UnaryOp::BitNot => {
                let v = self.rvalue(inner)?;
                let v = self.promote(v, line)?;
                let mty = self.env.mty(&v.ty, line)?;
                let minus1 = Operand::ConstInt { ty: mty.clone(), value: -1 };
                let r = self.fb.bin(BinOp::Xor, mty, v.op, minus1);
                Ok(TV { op: r, ty: v.ty })
            }
        }
    }

    fn binary(&mut self, op: BinaryOp, a: &Expr, b: &Expr, line: usize) -> Result<TV, CError> {
        let av = self.rvalue(a)?;
        let bv = self.rvalue(b)?;
        self.apply_binary(op, av, bv, line)
    }

    fn apply_binary(&mut self, op: BinaryOp, av: TV, bv: TV, line: usize) -> Result<TV, CError> {
        use BinaryOp::*;
        // Pointer arithmetic.
        if av.ty.is_ptr() || bv.ty.is_ptr() {
            match op {
                Add | Sub => {
                    if av.ty.is_ptr() && bv.ty.is_int() {
                        return self.ptr_offset(av, bv, op == Sub, line);
                    }
                    if bv.ty.is_ptr() && av.ty.is_int() && op == Add {
                        return self.ptr_offset(bv, av, false, line);
                    }
                    if av.ty.is_ptr() && bv.ty.is_ptr() && op == Sub {
                        // Pointer difference in elements.
                        let CType::Ptr(elem) = &av.ty else { unreachable!() };
                        let esz = self.env.size_of(elem, line)?.max(1);
                        let ai = self.fb.cast(CastOp::PtrToInt, av.op, Type::Ptr, Type::I64);
                        let bi = self.fb.cast(CastOp::PtrToInt, bv.op, Type::Ptr, Type::I64);
                        let d = self.fb.sub(Type::I64, ai, bi);
                        let r = self.fb.bin(BinOp::SDiv, Type::I64, d, Operand::i64(esz as i64));
                        return Ok(TV { op: r, ty: CType::Long });
                    }
                    return Err(self.err(line, "invalid pointer arithmetic"));
                }
                Eq | Ne | Lt | Le | Gt | Ge => {
                    if !(av.ty.is_ptr() && bv.ty.is_ptr()) {
                        return Err(self.err(line, "pointer compared to non-pointer"));
                    }
                    let pred = ptr_cmp_pred(op);
                    let c = self.fb.icmp(pred, Type::Ptr, av.op, bv.op);
                    let r = self.fb.cast(CastOp::Zext, c, Type::I1, Type::I32);
                    return Ok(TV { op: r, ty: CType::Int });
                }
                _ => return Err(self.err(line, "invalid operator on pointers")),
            }
        }

        // Usual arithmetic conversions.
        let common = if av.ty == CType::Double || bv.ty == CType::Double {
            CType::Double
        } else if av.ty.rank().max(bv.ty.rank()) >= CType::Long.rank() {
            CType::Long
        } else {
            CType::Int
        };
        let a = self.convert(av, &common, line)?;
        let b = self.convert(bv, &common, line)?;
        let mty = self.env.mty(&common, line)?;

        if common == CType::Double {
            let r = match op {
                Add => self.fb.bin(BinOp::FAdd, Type::F64, a.op, b.op),
                Sub => self.fb.bin(BinOp::FSub, Type::F64, a.op, b.op),
                Mul => self.fb.bin(BinOp::FMul, Type::F64, a.op, b.op),
                Div => self.fb.bin(BinOp::FDiv, Type::F64, a.op, b.op),
                Lt | Le | Gt | Ge | Eq | Ne => {
                    let pred = match op {
                        Lt => FcmpPred::Olt,
                        Le => FcmpPred::Ole,
                        Gt => FcmpPred::Ogt,
                        Ge => FcmpPred::Oge,
                        Eq => FcmpPred::Oeq,
                        _ => FcmpPred::One,
                    };
                    let c = self.fb.fcmp(pred, a.op, b.op);
                    let r = self.fb.cast(CastOp::Zext, c, Type::I1, Type::I32);
                    return Ok(TV { op: r, ty: CType::Int });
                }
                _ => return Err(self.err(line, "invalid operator on doubles")),
            };
            return Ok(TV { op: r, ty: CType::Double });
        }

        let r = match op {
            Add => self.fb.bin(BinOp::Add, mty, a.op, b.op),
            Sub => self.fb.bin(BinOp::Sub, mty, a.op, b.op),
            Mul => self.fb.bin(BinOp::Mul, mty, a.op, b.op),
            Div => self.fb.bin(BinOp::SDiv, mty, a.op, b.op),
            Rem => self.fb.bin(BinOp::SRem, mty, a.op, b.op),
            Shl => self.fb.bin(BinOp::Shl, mty, a.op, b.op),
            Shr => self.fb.bin(BinOp::AShr, mty, a.op, b.op),
            BitAnd => self.fb.bin(BinOp::And, mty, a.op, b.op),
            BitOr => self.fb.bin(BinOp::Or, mty, a.op, b.op),
            BitXor => self.fb.bin(BinOp::Xor, mty, a.op, b.op),
            Lt | Le | Gt | Ge | Eq | Ne => {
                let pred = match op {
                    Lt => IcmpPred::Slt,
                    Le => IcmpPred::Sle,
                    Gt => IcmpPred::Sgt,
                    Ge => IcmpPred::Sge,
                    Eq => IcmpPred::Eq,
                    _ => IcmpPred::Ne,
                };
                let c = self.fb.icmp(pred, mty, a.op, b.op);
                let r = self.fb.cast(CastOp::Zext, c, Type::I1, Type::I32);
                return Ok(TV { op: r, ty: CType::Int });
            }
        };
        Ok(TV { op: r, ty: common })
    }

    fn ptr_offset(&mut self, p: TV, i: TV, negate: bool, line: usize) -> Result<TV, CError> {
        let CType::Ptr(elem) = &p.ty else { unreachable!() };
        let mty = self.env.mty(elem, line)?;
        if mty == Type::Void {
            return Err(self.err(line, "arithmetic on void*"));
        }
        let i = self.convert(i, &CType::Long, line)?;
        let idx = if negate { self.fb.sub(Type::I64, Operand::i64(0), i.op) } else { i.op };
        let r = self.fb.gep(mty, p.op, vec![idx]);
        Ok(TV { op: r, ty: p.ty.clone() })
    }

    fn logical(&mut self, a: &Expr, b: &Expr, is_and: bool, _line: usize) -> Result<TV, CError> {
        // Short-circuit through a temporary slot (mem2reg will produce the
        // phi-based form clang generates).
        let slot = self.entry_alloca(Type::I32);
        let rhs_bb = self.fb.new_block("logic.rhs");
        let short_bb = self.fb.new_block("logic.short");
        let join = self.fb.new_block("logic.join");
        let ac = self.cond_value_tv(a)?;
        if is_and {
            self.fb.cond_br(ac, rhs_bb, short_bb);
        } else {
            self.fb.cond_br(ac, short_bb, rhs_bb);
        }
        self.fb.switch_to(short_bb);
        let short_val = if is_and { 0 } else { 1 };
        self.fb.store(Type::I32, Operand::i32(short_val), slot.clone());
        self.fb.br(join);
        self.fb.switch_to(rhs_bb);
        let bc = self.cond_value_tv(b)?;
        let bi = self.fb.cast(CastOp::Zext, bc, Type::I1, Type::I32);
        self.fb.store(Type::I32, bi, slot.clone());
        self.fb.br(join);
        self.fb.switch_to(join);
        let v = self.fb.load(Type::I32, slot);
        Ok(TV { op: v, ty: CType::Int })
    }

    fn conditional(&mut self, c: &Expr, a: &Expr, b: &Expr, line: usize) -> Result<TV, CError> {
        let cv = self.cond_value_tv(c)?;
        let then_bb = self.fb.new_block("cond.then");
        let else_bb = self.fb.new_block("cond.else");
        let join = self.fb.new_block("cond.join");
        self.fb.cond_br(cv, then_bb, else_bb);

        // Evaluate each arm on its own path, leaving the arm-end blocks
        // unterminated until the common type (and therefore the result
        // slot) is known.
        self.fb.switch_to(then_bb);
        let av = self.rvalue(a)?;
        let a_end = self.fb.current_block();
        self.fb.switch_to(else_bb);
        let bv = self.rvalue(b)?;
        let _b_end = self.fb.current_block();

        let (a_ty, b_ty) = (av.ty.clone(), bv.ty.clone());
        let common = if a_ty == b_ty {
            a_ty
        } else if a_ty.is_arith() && b_ty.is_arith() {
            if a_ty == CType::Double || b_ty == CType::Double {
                CType::Double
            } else if a_ty.rank().max(b_ty.rank()) >= CType::Long.rank() {
                CType::Long
            } else {
                CType::Int
            }
        } else if a_ty.is_ptr() && b_ty.is_ptr() {
            a_ty
        } else {
            return Err(self.err(line, "incompatible conditional arms"));
        };
        let mty = self.env.mty(&common, line)?;
        let slot = self.entry_alloca(mty.clone());

        // b-arm (we are positioned at its end).
        let bv = self.convert(bv, &common, line)?;
        self.fb.store(mty.clone(), bv.op, slot.clone());
        self.fb.br(join);
        // a-arm.
        self.fb.switch_to(a_end);
        let av = self.convert(av, &common, line)?;
        self.fb.store(mty.clone(), av.op, slot.clone());
        self.fb.br(join);

        self.fb.switch_to(join);
        let v = self.fb.load(mty, slot);
        Ok(TV { op: v, ty: common })
    }

    /// Creates an alloca in the entry block (clang-style: all locals and
    /// temporaries live at function scope, so loops do not grow the stack).
    fn entry_alloca(&mut self, mty: Type) -> Operand {
        let loc = self.fb.current_loc();
        let f = self.fb.func_mut();
        let id = f.insert_instr(
            BlockId::new(0),
            0,
            mir::instr::InstrKind::Alloca { ty: mty, count: Operand::i64(1) },
        );
        f.set_instr_loc(id, loc);
        Operand::Val(f.instr_result(id).expect("alloca result"))
    }

    /// Evaluates `e` and coerces to an `i1` condition.
    fn cond_value(&mut self, e: &Expr) -> Result<Operand, CError> {
        self.cond_value_tv(e)
    }

    fn cond_value_tv(&mut self, e: &Expr) -> Result<Operand, CError> {
        let v = self.rvalue(e)?;
        let line = e.line;
        Ok(match &v.ty {
            CType::Double => self.fb.fcmp(FcmpPred::One, v.op, Operand::ConstFloat(0.0)),
            CType::Ptr(_) => self.fb.icmp(IcmpPred::Ne, Type::Ptr, v.op, Operand::Null),
            t if t.is_int() => {
                let mty = self.env.mty(t, line)?;
                let zero = Operand::ConstInt { ty: mty.clone(), value: 0 };
                self.fb.icmp(IcmpPred::Ne, mty, v.op, zero)
            }
            other => return Err(self.err(line, format!("{other:?} used as condition"))),
        })
    }

    /// Integer promotion to at least `int`.
    fn promote(&mut self, v: TV, line: usize) -> Result<TV, CError> {
        if v.ty.is_int() && v.ty.rank() < CType::Int.rank() {
            self.convert(v, &CType::Int, line)
        } else {
            Ok(v)
        }
    }

    /// Converts `v` to type `to` (implicit conversion rules).
    fn convert(&mut self, v: TV, to: &CType, line: usize) -> Result<TV, CError> {
        if v.ty == *to {
            return Ok(v);
        }
        let from_mty = self.env.mty(&v.ty, line)?;
        let to_mty = self.env.mty(to, line)?;
        let op = match (&v.ty, to) {
            (f, t) if f.is_int() && t.is_int() => {
                if from_mty.size_of() < to_mty.size_of() {
                    self.fb.cast(CastOp::Sext, v.op, from_mty, to_mty)
                } else if from_mty.size_of() > to_mty.size_of() {
                    self.fb.cast(CastOp::Trunc, v.op, from_mty, to_mty)
                } else {
                    v.op // same width (cannot happen with distinct ranks)
                }
            }
            (f, CType::Double) if f.is_int() => {
                self.fb.cast(CastOp::SiToFp, v.op, from_mty, Type::F64)
            }
            (CType::Double, t) if t.is_int() => {
                self.fb.cast(CastOp::FpToSi, v.op, Type::F64, to_mty)
            }
            (CType::Ptr(_), CType::Ptr(_)) => v.op, // lenient mini-C
            (f, CType::Ptr(_)) if f.is_int() => {
                // Implicit only for literal 0 in real C; mini-C is lenient
                // but still goes through inttoptr (visible to §4.4).
                let wide = if from_mty != Type::I64 {
                    self.fb.cast(CastOp::Sext, v.op, from_mty, Type::I64)
                } else {
                    v.op
                };
                self.fb.cast(CastOp::IntToPtr, wide, Type::I64, Type::Ptr)
            }
            (CType::Ptr(_), t) if t.is_int() => {
                let i = self.fb.cast(CastOp::PtrToInt, v.op, Type::Ptr, Type::I64);
                if to_mty != Type::I64 {
                    self.fb.cast(CastOp::Trunc, i, Type::I64, to_mty)
                } else {
                    i
                }
            }
            (f, t) => return Err(self.err(line, format!("cannot convert {f:?} to {t:?}"))),
        };
        Ok(TV { op, ty: to.clone() })
    }

    /// Explicit cast (superset of implicit conversions).
    fn cast(&mut self, v: TV, to: &CType, line: usize) -> Result<TV, CError> {
        if *to == CType::Void {
            return Ok(TV { op: v.op, ty: CType::Void });
        }
        self.convert(v, to, line)
    }

    /// Converts and stores `v` into `addr` of type `lty`; structs copy by
    /// `memcpy`.
    fn store_converted(
        &mut self,
        v: TV,
        addr: &Operand,
        lty: &CType,
        line: usize,
    ) -> Result<(), CError> {
        if let CType::Struct(_) = lty {
            if v.ty != *lty {
                return Err(self.err(line, "struct assignment type mismatch"));
            }
            let size = self.env.size_of(lty, line)?;
            self.fb.memcpy(addr.clone(), v.op, Operand::i64(size as i64));
            return Ok(());
        }
        let v = self.convert(v, lty, line)?;
        let mty = self.env.mty(lty, line)?;
        self.fb.store(mty, v.op, addr.clone());
        Ok(())
    }
}

fn ptr_cmp_pred(op: BinaryOp) -> IcmpPred {
    match op {
        BinaryOp::Eq => IcmpPred::Eq,
        BinaryOp::Ne => IcmpPred::Ne,
        BinaryOp::Lt => IcmpPred::Ult,
        BinaryOp::Le => IcmpPred::Ule,
        BinaryOp::Gt => IcmpPred::Ugt,
        BinaryOp::Ge => IcmpPred::Uge,
        _ => unreachable!("not a comparison"),
    }
}
