//! Tokenizer for mini-C.

use crate::CError;

/// A token with its source line.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// Token payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds. Variant names mirror their C surface syntax (`LParen` =
/// `(`, `KwWhile` = `while`, `Shl` = `<<`, ...).
#[allow(missing_docs)]
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    Ident(String),
    IntLit(i64),
    FloatLit(f64),
    CharLit(i64),
    // keywords
    KwVoid,
    KwChar,
    KwShort,
    KwInt,
    KwLong,
    KwDouble,
    KwStruct,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    KwSizeof,
    KwExtern,
    KwUninstrumented,
    KwHiddenSize,
    KwLibGlobal,
    // punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    AmpAmp,
    PipePipe,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    Question,
    Colon,
    Eof,
}

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns a [`CError`] on unknown characters or malformed literals.
pub fn lex(src: &str) -> Result<Vec<Token>, CError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= b.len() {
                    return Err(CError::new(line, "unterminated block comment"));
                }
                i += 2;
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let kind = match word {
                    "void" => Tok::KwVoid,
                    "char" => Tok::KwChar,
                    "short" => Tok::KwShort,
                    "int" => Tok::KwInt,
                    "long" => Tok::KwLong,
                    "double" => Tok::KwDouble,
                    "struct" => Tok::KwStruct,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "for" => Tok::KwFor,
                    "return" => Tok::KwReturn,
                    "break" => Tok::KwBreak,
                    "continue" => Tok::KwContinue,
                    "sizeof" => Tok::KwSizeof,
                    "extern" => Tok::KwExtern,
                    "uninstrumented" => Tok::KwUninstrumented,
                    "__hidden_size" => Tok::KwHiddenSize,
                    "__libglobal" => Tok::KwLibGlobal,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Token { kind, line });
            }
            b'0'..=b'9' => {
                let start = i;
                let mut is_float = false;
                if c == b'0' && i + 1 < b.len() && (b[i + 1] | 32) == b'x' {
                    i += 2;
                    while i < b.len() && b[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let v = i64::from_str_radix(&src[start + 2..i], 16)
                        .map_err(|e| CError::new(line, format!("bad hex literal: {e}")))?;
                    out.push(Token { kind: Tok::IntLit(v), line });
                    continue;
                }
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                if i < b.len() && b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if is_float {
                    let v: f64 = src[start..i]
                        .parse()
                        .map_err(|e| CError::new(line, format!("bad float literal: {e}")))?;
                    out.push(Token { kind: Tok::FloatLit(v), line });
                } else {
                    let v: i64 = src[start..i]
                        .parse::<u64>()
                        .map(|u| u as i64)
                        .map_err(|e| CError::new(line, format!("bad integer literal: {e}")))?;
                    out.push(Token { kind: Tok::IntLit(v), line });
                }
            }
            b'\'' => {
                if i + 2 < b.len() && b[i + 1] == b'\\' {
                    let v = match b[i + 2] {
                        b'n' => b'\n',
                        b't' => b'\t',
                        b'0' => 0,
                        b'\\' => b'\\',
                        b'\'' => b'\'',
                        other => {
                            return Err(CError::new(
                                line,
                                format!("bad escape '\\{}'", other as char),
                            ))
                        }
                    };
                    if i + 3 >= b.len() || b[i + 3] != b'\'' {
                        return Err(CError::new(line, "unterminated char literal"));
                    }
                    out.push(Token { kind: Tok::CharLit(v as i64), line });
                    i += 4;
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    out.push(Token { kind: Tok::CharLit(b[i + 1] as i64), line });
                    i += 3;
                } else {
                    return Err(CError::new(line, "bad char literal"));
                }
            }
            _ => {
                // Peek at the byte level: slicing `src` here could split a
                // multi-byte UTF-8 character in malformed input.
                let next = if i + 1 < b.len() { b[i + 1] } else { 0 };
                let (kind, len) = match (c, next) {
                    (b'-', b'>') => (Tok::Arrow, 2),
                    (b'<', b'<') => (Tok::Shl, 2),
                    (b'>', b'>') => (Tok::Shr, 2),
                    (b'<', b'=') => (Tok::Le, 2),
                    (b'>', b'=') => (Tok::Ge, 2),
                    (b'=', b'=') => (Tok::EqEq, 2),
                    (b'!', b'=') => (Tok::NotEq, 2),
                    (b'&', b'&') => (Tok::AmpAmp, 2),
                    (b'|', b'|') => (Tok::PipePipe, 2),
                    (b'+', b'=') => (Tok::PlusAssign, 2),
                    (b'-', b'=') => (Tok::MinusAssign, 2),
                    (b'*', b'=') => (Tok::StarAssign, 2),
                    (b'/', b'=') => (Tok::SlashAssign, 2),
                    _ => {
                        let k = match c {
                            b'(' => Tok::LParen,
                            b')' => Tok::RParen,
                            b'{' => Tok::LBrace,
                            b'}' => Tok::RBrace,
                            b'[' => Tok::LBracket,
                            b']' => Tok::RBracket,
                            b';' => Tok::Semi,
                            b',' => Tok::Comma,
                            b'.' => Tok::Dot,
                            b'+' => Tok::Plus,
                            b'-' => Tok::Minus,
                            b'*' => Tok::Star,
                            b'/' => Tok::Slash,
                            b'%' => Tok::Percent,
                            b'&' => Tok::Amp,
                            b'|' => Tok::Pipe,
                            b'^' => Tok::Caret,
                            b'~' => Tok::Tilde,
                            b'!' => Tok::Bang,
                            b'<' => Tok::Lt,
                            b'>' => Tok::Gt,
                            b'=' => Tok::Assign,
                            b'?' => Tok::Question,
                            b':' => Tok::Colon,
                            other => {
                                return Err(CError::new(
                                    line,
                                    format!("unexpected character '{}'", other as char),
                                ))
                            }
                        };
                        (k, 1)
                    }
                };
                out.push(Token { kind, line });
                i += len;
            }
        }
    }
    out.push(Token { kind: Tok::Eof, line });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("int foo while0"),
            vec![Tok::KwInt, Tok::Ident("foo".into()), Tok::Ident("while0".into()), Tok::Eof]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 0x1F 3.5"),
            vec![Tok::IntLit(42), Tok::IntLit(31), Tok::FloatLit(3.5), Tok::Eof]
        );
    }

    #[test]
    fn char_literals() {
        assert_eq!(
            kinds("'a' '\\n' '\\0'"),
            vec![Tok::CharLit(97), Tok::CharLit(10), Tok::CharLit(0), Tok::Eof]
        );
    }

    #[test]
    fn operators_two_char_greedy() {
        assert_eq!(
            kinds("a->b <= >> && ||"),
            vec![
                Tok::Ident("a".into()),
                Tok::Arrow,
                Tok::Ident("b".into()),
                Tok::Le,
                Tok::Shr,
                Tok::AmpAmp,
                Tok::PipePipe,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped_lines_counted() {
        let toks = lex("// c1\n/* c2\nc3 */ int").unwrap();
        assert_eq!(toks[0].kind, Tok::KwInt);
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn error_has_line() {
        let e = lex("int\n@").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn extension_keywords() {
        assert_eq!(
            kinds("uninstrumented __hidden_size __libglobal"),
            vec![Tok::KwUninstrumented, Tok::KwHiddenSize, Tok::KwLibGlobal, Tok::Eof]
        );
    }
}
