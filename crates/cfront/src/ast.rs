//! Abstract syntax tree and C types.

/// A C type.
#[allow(missing_docs)]
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CType {
    /// `void` (function returns / `void*` pointees only).
    Void,
    /// 8-bit signed.
    Char,
    /// 16-bit signed.
    Short,
    /// 32-bit signed.
    Int,
    /// 64-bit signed.
    Long,
    /// IEEE double.
    Double,
    /// Pointer to `T`.
    Ptr(Box<CType>),
    /// `T[N]`.
    Array(Box<CType>, u64),
    /// Named struct.
    Struct(String),
}

impl CType {
    /// Whether this is an integer type.
    pub fn is_int(&self) -> bool {
        matches!(self, CType::Char | CType::Short | CType::Int | CType::Long)
    }

    /// Whether this is an arithmetic (integer or floating) type.
    pub fn is_arith(&self) -> bool {
        self.is_int() || *self == CType::Double
    }

    /// Whether this is a pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self, CType::Ptr(_))
    }

    /// Integer conversion rank (char < short < int < long).
    pub fn rank(&self) -> u32 {
        match self {
            CType::Char => 1,
            CType::Short => 2,
            CType::Int => 3,
            CType::Long => 4,
            _ => 0,
        }
    }

    /// Pointer to `self`.
    pub fn ptr_to(&self) -> CType {
        CType::Ptr(Box::new(self.clone()))
    }
}

/// Binary operators (after lexing; `&&`/`||` are separate AST nodes).
#[allow(missing_docs)]
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitOr,
    BitXor,
}

/// Unary operators.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`).
    Not,
    /// Bitwise not (`~`).
    BitNot,
}

/// An expression, tagged with its source line.
#[derive(Clone, PartialEq, Debug)]
pub struct Expr {
    /// Source line for diagnostics.
    pub line: usize,
    /// Payload.
    pub kind: ExprKind,
}

/// Expression payloads. Variants mirror C surface forms.
#[allow(missing_docs)]
#[derive(Clone, PartialEq, Debug)]
pub enum ExprKind {
    IntLit(i64),
    FloatLit(f64),
    /// Variable or function reference.
    Ident(String),
    Unary(UnaryOp, Box<Expr>),
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Short-circuit `&&`.
    LogicalAnd(Box<Expr>, Box<Expr>),
    /// Short-circuit `||`.
    LogicalOr(Box<Expr>, Box<Expr>),
    /// `cond ? a : b`.
    Conditional(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Simple assignment `lhs = rhs`.
    Assign(Box<Expr>, Box<Expr>),
    /// Compound assignment `lhs op= rhs`.
    CompoundAssign(BinaryOp, Box<Expr>, Box<Expr>),
    /// `*e`.
    Deref(Box<Expr>),
    /// `&e`.
    AddrOf(Box<Expr>),
    /// `a[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// `s.field`.
    Member(Box<Expr>, String),
    /// `p->field`.
    Arrow(Box<Expr>, String),
    /// `f(args...)` (direct) or `(*fp)(args...)` via callee expression.
    Call(Box<Expr>, Vec<Expr>),
    /// `(type)e`.
    Cast(CType, Box<Expr>),
    /// `sizeof(type)`.
    SizeofType(CType),
}

/// A statement. Variants mirror C surface forms.
#[allow(missing_docs)]
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// Local declaration with optional initializer.
    Decl {
        name: String,
        ty: CType,
        init: Option<Expr>,
        line: usize,
    },
    /// Expression statement.
    Expr(Expr),
    /// Compound block.
    Block(Vec<Stmt>),
    If {
        cond: Expr,
        then_branch: Box<Stmt>,
        else_branch: Option<Box<Stmt>>,
    },
    While {
        cond: Expr,
        body: Box<Stmt>,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
    },
    Return {
        value: Option<Expr>,
        line: usize,
    },
    Break {
        line: usize,
    },
    Continue {
        line: usize,
    },
}

/// A function parameter.
#[allow(missing_docs)]
#[derive(Clone, PartialEq, Debug)]
pub struct CParam {
    pub name: String,
    pub ty: CType,
}

/// A function definition or declaration.
#[allow(missing_docs)]
#[derive(Clone, PartialEq, Debug)]
pub struct CFunction {
    pub name: String,
    pub params: Vec<CParam>,
    pub ret: CType,
    /// `None` for declarations.
    pub body: Option<Vec<Stmt>>,
    /// `uninstrumented` extension (§4.3 external library code).
    pub uninstrumented: bool,
    pub line: usize,
}

/// A global variable.
#[allow(missing_docs)]
#[derive(Clone, PartialEq, Debug)]
pub struct CGlobal {
    pub name: String,
    pub ty: CType,
    /// Constant initializer (scalar literals only).
    pub init: Option<Expr>,
    /// `extern` declaration (defined elsewhere).
    pub is_extern: bool,
    /// `__hidden_size` extension: the instrumentation must not see the size.
    pub hidden_size: bool,
    /// `__libglobal` extension: uninstrumented-library global.
    pub lib_global: bool,
    pub line: usize,
}

/// A struct definition.
#[allow(missing_docs)]
#[derive(Clone, PartialEq, Debug)]
pub struct CStruct {
    pub name: String,
    pub fields: Vec<(String, CType)>,
    pub line: usize,
}

/// A parsed translation unit.
#[allow(missing_docs)]
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Unit {
    pub structs: Vec<CStruct>,
    pub globals: Vec<CGlobal>,
    pub functions: Vec<CFunction>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_predicates() {
        assert!(CType::Int.is_int());
        assert!(CType::Double.is_arith());
        assert!(!CType::Double.is_int());
        assert!(CType::Int.ptr_to().is_ptr());
        assert!(CType::Char.rank() < CType::Long.rank());
        assert_eq!(CType::Ptr(Box::new(CType::Void)).rank(), 0);
    }
}
