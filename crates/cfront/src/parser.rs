//! Recursive-descent parser for mini-C.

use crate::ast::*;
use crate::lexer::{Tok, Token};
use crate::CError;

/// Parses a token stream into a [`Unit`].
///
/// # Errors
///
/// Returns a [`CError`] on syntax errors.
pub fn parse(tokens: Vec<Token>) -> Result<Unit, CError> {
    let mut p = Parser { tokens, pos: 0 };
    p.parse_unit()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), CError> {
        if self.peek() == &t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, CError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn err(&self, message: impl Into<String>) -> CError {
        CError::new(self.line(), message.into())
    }

    fn is_type_start(&self) -> bool {
        matches!(
            self.peek(),
            Tok::KwVoid
                | Tok::KwChar
                | Tok::KwShort
                | Tok::KwInt
                | Tok::KwLong
                | Tok::KwDouble
                | Tok::KwStruct
        )
    }

    /// Parses a base type plus pointer stars.
    fn parse_type(&mut self) -> Result<CType, CError> {
        let base = match self.bump() {
            Tok::KwVoid => CType::Void,
            Tok::KwChar => CType::Char,
            Tok::KwShort => CType::Short,
            Tok::KwInt => CType::Int,
            Tok::KwLong => CType::Long,
            Tok::KwDouble => CType::Double,
            Tok::KwStruct => CType::Struct(self.expect_ident()?),
            other => return Err(self.err(format!("expected type, found {other:?}"))),
        };
        let mut ty = base;
        while self.eat(&Tok::Star) {
            ty = ty.ptr_to();
        }
        Ok(ty)
    }

    fn parse_unit(&mut self) -> Result<Unit, CError> {
        let mut unit = Unit::default();
        while self.peek() != &Tok::Eof {
            // struct definition?
            if self.peek() == &Tok::KwStruct && matches!(self.peek2(), Tok::Ident(_)) {
                // Lookahead for '{' after the name: struct def vs. use.
                let save = self.pos;
                self.bump();
                let name = self.expect_ident()?;
                if self.peek() == &Tok::LBrace {
                    let line = self.line();
                    self.bump();
                    let mut fields = Vec::new();
                    while self.peek() != &Tok::RBrace {
                        let ty = self.parse_type()?;
                        let fname = self.expect_ident()?;
                        let ty = self.parse_array_suffix(ty, false)?;
                        self.expect(Tok::Semi)?;
                        fields.push((fname, ty));
                    }
                    self.expect(Tok::RBrace)?;
                    self.expect(Tok::Semi)?;
                    unit.structs.push(CStruct { name, fields, line });
                    continue;
                }
                self.pos = save;
            }

            // Qualifiers.
            let mut is_extern = false;
            let mut uninstrumented = false;
            let mut hidden_size = false;
            let mut lib_global = false;
            loop {
                match self.peek() {
                    Tok::KwExtern => {
                        is_extern = true;
                        self.bump();
                    }
                    Tok::KwUninstrumented => {
                        uninstrumented = true;
                        self.bump();
                    }
                    Tok::KwHiddenSize => {
                        hidden_size = true;
                        self.bump();
                    }
                    Tok::KwLibGlobal => {
                        lib_global = true;
                        self.bump();
                    }
                    _ => break,
                }
            }

            let line = self.line();
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            if self.peek() == &Tok::LParen {
                // Function.
                self.bump();
                let mut params = Vec::new();
                if self.peek() == &Tok::KwVoid && self.peek2() == &Tok::RParen {
                    self.bump();
                }
                if !self.eat(&Tok::RParen) {
                    loop {
                        let pty = self.parse_type()?;
                        let pname = self.expect_ident()?;
                        // Array params decay to pointers.
                        let pty = if self.eat(&Tok::LBracket) {
                            if let Tok::IntLit(_) = self.peek() {
                                self.bump();
                            }
                            self.expect(Tok::RBracket)?;
                            pty.ptr_to()
                        } else {
                            pty
                        };
                        params.push(CParam { name: pname, ty: pty });
                        if self.eat(&Tok::RParen) {
                            break;
                        }
                        self.expect(Tok::Comma)?;
                    }
                }
                let body = if self.eat(&Tok::Semi) {
                    None
                } else {
                    self.expect(Tok::LBrace)?;
                    let mut stmts = Vec::new();
                    while !self.eat(&Tok::RBrace) {
                        stmts.push(self.parse_stmt()?);
                    }
                    Some(stmts)
                };
                unit.functions.push(CFunction {
                    name,
                    params,
                    ret: ty,
                    body,
                    uninstrumented,
                    line,
                });
            } else {
                // Global variable.
                let ty = self.parse_array_suffix(ty, is_extern)?;
                let init = if self.eat(&Tok::Assign) { Some(self.parse_expr()?) } else { None };
                self.expect(Tok::Semi)?;
                unit.globals.push(CGlobal {
                    name,
                    ty,
                    init,
                    is_extern,
                    hidden_size,
                    lib_global,
                    line,
                });
            }
        }
        Ok(unit)
    }

    /// Parses `[N]` suffixes; `[]` (size omitted) only when `allow_empty`
    /// (extern declarations; yields a zero-length array).
    fn parse_array_suffix(&mut self, base: CType, allow_empty: bool) -> Result<CType, CError> {
        let mut dims = Vec::new();
        while self.eat(&Tok::LBracket) {
            if self.eat(&Tok::RBracket) {
                if !allow_empty {
                    return Err(self.err("array size required"));
                }
                dims.push(0u64);
            } else {
                let n = match self.bump() {
                    Tok::IntLit(n) if n >= 0 => n as u64,
                    other => return Err(self.err(format!("expected array size, found {other:?}"))),
                };
                self.expect(Tok::RBracket)?;
                dims.push(n);
            }
        }
        let mut ty = base;
        for &n in dims.iter().rev() {
            ty = CType::Array(Box::new(ty), n);
        }
        Ok(ty)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CError> {
        let line = self.line();
        match self.peek() {
            Tok::LBrace => {
                self.bump();
                let mut stmts = Vec::new();
                while !self.eat(&Tok::RBrace) {
                    stmts.push(self.parse_stmt()?);
                }
                Ok(Stmt::Block(stmts))
            }
            Tok::KwIf => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                let then_branch = Box::new(self.parse_stmt()?);
                let else_branch =
                    if self.eat(&Tok::KwElse) { Some(Box::new(self.parse_stmt()?)) } else { None };
                Ok(Stmt::If { cond, then_branch, else_branch })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                Ok(Stmt::While { cond, body })
            }
            Tok::KwFor => {
                self.bump();
                self.expect(Tok::LParen)?;
                let init = if self.eat(&Tok::Semi) {
                    None
                } else if self.is_type_start() {
                    Some(Box::new(self.parse_decl_stmt()?))
                } else {
                    let e = self.parse_expr()?;
                    self.expect(Tok::Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if self.peek() == &Tok::Semi { None } else { Some(self.parse_expr()?) };
                self.expect(Tok::Semi)?;
                let step =
                    if self.peek() == &Tok::RParen { None } else { Some(self.parse_expr()?) };
                self.expect(Tok::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                Ok(Stmt::For { init, cond, step, body })
            }
            Tok::KwReturn => {
                self.bump();
                let value = if self.peek() == &Tok::Semi { None } else { Some(self.parse_expr()?) };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return { value, line })
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Break { line })
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Continue { line })
            }
            _ if self.is_type_start() => self.parse_decl_stmt(),
            _ => {
                let e = self.parse_expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn parse_decl_stmt(&mut self) -> Result<Stmt, CError> {
        let line = self.line();
        let ty = self.parse_type()?;
        let name = self.expect_ident()?;
        let ty = self.parse_array_suffix(ty, false)?;
        let init = if self.eat(&Tok::Assign) { Some(self.parse_expr()?) } else { None };
        self.expect(Tok::Semi)?;
        Ok(Stmt::Decl { name, ty, init, line })
    }

    // --- expressions, precedence climbing ---

    fn parse_expr(&mut self) -> Result<Expr, CError> {
        self.parse_assign()
    }

    fn parse_assign(&mut self) -> Result<Expr, CError> {
        let line = self.line();
        let lhs = self.parse_conditional()?;
        let op = match self.peek() {
            Tok::Assign => None,
            Tok::PlusAssign => Some(BinaryOp::Add),
            Tok::MinusAssign => Some(BinaryOp::Sub),
            Tok::StarAssign => Some(BinaryOp::Mul),
            Tok::SlashAssign => Some(BinaryOp::Div),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_assign()?;
        Ok(Expr {
            line,
            kind: match op {
                None => ExprKind::Assign(Box::new(lhs), Box::new(rhs)),
                Some(op) => ExprKind::CompoundAssign(op, Box::new(lhs), Box::new(rhs)),
            },
        })
    }

    fn parse_conditional(&mut self) -> Result<Expr, CError> {
        let line = self.line();
        let cond = self.parse_binary(0)?;
        if self.eat(&Tok::Question) {
            let a = self.parse_expr()?;
            self.expect(Tok::Colon)?;
            let b = self.parse_conditional()?;
            Ok(Expr { line, kind: ExprKind::Conditional(Box::new(cond), Box::new(a), Box::new(b)) })
        } else {
            Ok(cond)
        }
    }

    fn binop_for(tok: &Tok) -> Option<(u8, BinOrLogic)> {
        use BinaryOp::*;
        Some(match tok {
            Tok::PipePipe => (1, BinOrLogic::Or),
            Tok::AmpAmp => (2, BinOrLogic::And),
            Tok::Pipe => (3, BinOrLogic::Bin(BitOr)),
            Tok::Caret => (4, BinOrLogic::Bin(BitXor)),
            Tok::Amp => (5, BinOrLogic::Bin(BitAnd)),
            Tok::EqEq => (6, BinOrLogic::Bin(Eq)),
            Tok::NotEq => (6, BinOrLogic::Bin(Ne)),
            Tok::Lt => (7, BinOrLogic::Bin(Lt)),
            Tok::Le => (7, BinOrLogic::Bin(Le)),
            Tok::Gt => (7, BinOrLogic::Bin(Gt)),
            Tok::Ge => (7, BinOrLogic::Bin(Ge)),
            Tok::Shl => (8, BinOrLogic::Bin(Shl)),
            Tok::Shr => (8, BinOrLogic::Bin(Shr)),
            Tok::Plus => (9, BinOrLogic::Bin(Add)),
            Tok::Minus => (9, BinOrLogic::Bin(Sub)),
            Tok::Star => (10, BinOrLogic::Bin(Mul)),
            Tok::Slash => (10, BinOrLogic::Bin(Div)),
            Tok::Percent => (10, BinOrLogic::Bin(Rem)),
            _ => return None,
        })
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, CError> {
        let mut lhs = self.parse_unary()?;
        while let Some((prec, op)) = Self::binop_for(self.peek()) {
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Expr {
                line,
                kind: match op {
                    BinOrLogic::Bin(b) => ExprKind::Binary(b, Box::new(lhs), Box::new(rhs)),
                    BinOrLogic::And => ExprKind::LogicalAnd(Box::new(lhs), Box::new(rhs)),
                    BinOrLogic::Or => ExprKind::LogicalOr(Box::new(lhs), Box::new(rhs)),
                },
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, CError> {
        let line = self.line();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr { line, kind: ExprKind::Unary(UnaryOp::Neg, Box::new(e)) })
            }
            Tok::Bang => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr { line, kind: ExprKind::Unary(UnaryOp::Not, Box::new(e)) })
            }
            Tok::Tilde => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr { line, kind: ExprKind::Unary(UnaryOp::BitNot, Box::new(e)) })
            }
            Tok::Star => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr { line, kind: ExprKind::Deref(Box::new(e)) })
            }
            Tok::Amp => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr { line, kind: ExprKind::AddrOf(Box::new(e)) })
            }
            Tok::KwSizeof => {
                self.bump();
                self.expect(Tok::LParen)?;
                let ty = self.parse_type()?;
                let ty = self.parse_array_suffix(ty, false)?;
                self.expect(Tok::RParen)?;
                Ok(Expr { line, kind: ExprKind::SizeofType(ty) })
            }
            Tok::LParen => {
                // Cast or parenthesized expression.
                let save = self.pos;
                self.bump();
                if self.is_type_start() {
                    let ty = self.parse_type()?;
                    self.expect(Tok::RParen)?;
                    let e = self.parse_unary()?;
                    return Ok(Expr { line, kind: ExprKind::Cast(ty, Box::new(e)) });
                }
                self.pos = save;
                self.parse_postfix()
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, CError> {
        let mut e = self.parse_primary()?;
        loop {
            let line = self.line();
            match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    self.expect(Tok::RBracket)?;
                    e = Expr { line, kind: ExprKind::Index(Box::new(e), Box::new(idx)) };
                }
                Tok::Dot => {
                    self.bump();
                    let f = self.expect_ident()?;
                    e = Expr { line, kind: ExprKind::Member(Box::new(e), f) };
                }
                Tok::Arrow => {
                    self.bump();
                    let f = self.expect_ident()?;
                    e = Expr { line, kind: ExprKind::Arrow(Box::new(e), f) };
                }
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat(&Tok::RParen) {
                                break;
                            }
                            self.expect(Tok::Comma)?;
                        }
                    }
                    e = Expr { line, kind: ExprKind::Call(Box::new(e), args) };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, CError> {
        let line = self.line();
        match self.bump() {
            Tok::IntLit(v) => Ok(Expr { line, kind: ExprKind::IntLit(v) }),
            Tok::CharLit(v) => Ok(Expr { line, kind: ExprKind::IntLit(v) }),
            Tok::FloatLit(v) => Ok(Expr { line, kind: ExprKind::FloatLit(v) }),
            Tok::Ident(name) => Ok(Expr { line, kind: ExprKind::Ident(name) }),
            Tok::LParen => {
                let e = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(CError::new(line, format!("expected expression, found {other:?}"))),
        }
    }
}

enum BinOrLogic {
    Bin(BinaryOp),
    And,
    Or,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Unit {
        parse(lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_function_with_control_flow() {
        let u = parse_src(
            r#"
            long fib(long n) {
                if (n < 2) return n;
                return fib(n - 1) + fib(n - 2);
            }
        "#,
        );
        assert_eq!(u.functions.len(), 1);
        assert_eq!(u.functions[0].name, "fib");
        assert_eq!(u.functions[0].params.len(), 1);
    }

    #[test]
    fn parses_struct_and_globals() {
        let u = parse_src(
            r#"
            struct node { long value; struct node *next; };
            struct node pool[100];
            extern int table[];
            __hidden_size int hidden[64];
        "#,
        );
        assert_eq!(u.structs.len(), 1);
        assert_eq!(u.structs[0].fields.len(), 2);
        assert_eq!(u.globals.len(), 3);
        assert!(matches!(u.globals[1].ty, CType::Array(_, 0)));
        assert!(u.globals[1].is_extern);
        assert!(u.globals[2].hidden_size);
    }

    #[test]
    fn precedence_mul_over_add() {
        let u = parse_src("long f(void) { return 1 + 2 * 3; }");
        let Stmt::Return { value: Some(e), .. } = &u.functions[0].body.as_ref().unwrap()[0] else {
            panic!()
        };
        let ExprKind::Binary(BinaryOp::Add, _, rhs) = &e.kind else { panic!("{e:?}") };
        assert!(matches!(rhs.kind, ExprKind::Binary(BinaryOp::Mul, _, _)));
    }

    #[test]
    fn cast_vs_parenthesized() {
        let u = parse_src("long f(long x) { return (long)x + (x); }");
        let Stmt::Return { value: Some(e), .. } = &u.functions[0].body.as_ref().unwrap()[0] else {
            panic!()
        };
        let ExprKind::Binary(BinaryOp::Add, lhs, _) = &e.kind else { panic!() };
        assert!(matches!(lhs.kind, ExprKind::Cast(CType::Long, _)));
    }

    #[test]
    fn for_loop_with_decl() {
        let u = parse_src("void f(void) { for (int i = 0; i < 10; i += 1) { continue; } }");
        let Stmt::For { init, cond, step, .. } = &u.functions[0].body.as_ref().unwrap()[0] else {
            panic!()
        };
        assert!(init.is_some());
        assert!(cond.is_some());
        assert!(step.is_some());
    }

    #[test]
    fn postfix_chains() {
        let u = parse_src("long f(struct s *p) { return p->next->vals[3]; }");
        let Stmt::Return { value: Some(e), .. } = &u.functions[0].body.as_ref().unwrap()[0] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Index(_, _)));
    }

    #[test]
    fn uninstrumented_qualifier() {
        let u = parse_src("uninstrumented long libfn(long x) { return x; }");
        assert!(u.functions[0].uninstrumented);
    }

    #[test]
    fn sizeof_and_conditional() {
        let u = parse_src("long f(long x) { return x ? sizeof(long) : sizeof(int[4]); }");
        let Stmt::Return { value: Some(e), .. } = &u.functions[0].body.as_ref().unwrap()[0] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Conditional(_, _, _)));
    }

    #[test]
    fn error_messages_have_lines() {
        let e = parse(lex("long f(void) {\n  return +;\n}").unwrap()).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn multidim_arrays() {
        let u = parse_src("int grid[4][8];");
        let CType::Array(inner, 4) = &u.globals[0].ty else { panic!() };
        assert!(matches!(**inner, CType::Array(_, 8)));
    }
}
