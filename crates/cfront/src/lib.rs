#![warn(missing_docs)]

//! `cfront`: a mini-C frontend lowering to [`mir`].
//!
//! The paper's observations hinge on the translation from C to IR (§4.1):
//! bugs disappear, pointer stores become integer stores (§4.4), address
//! arithmetic folds away (Appendix B). A real — if small — C frontend lets
//! this reproduction express its benchmarks and pitfall programs in C and
//! observe the same effects.
//!
//! # Supported language
//!
//! Types `void`, `char`, `short`, `int`, `long`, `double`, pointers,
//! fixed-size arrays, and named `struct`s; functions (definitions,
//! declarations, recursion, function pointers via `&name`); globals;
//! control flow (`if`/`else`, `while`, `for`, `break`, `continue`,
//! `return`); the usual expression operators including short-circuit
//! `&&`/`||`, the conditional operator, casts, `sizeof`, pointer
//! arithmetic, array subscripts, `.`/`->`, and compound assignment.
//!
//! # Extensions for the reproduction
//!
//! * `uninstrumented` on a function definition marks it as belonging to an
//!   *uninstrumented external library* (§4.3).
//! * `__hidden_size` on a global array gives it a real size for execution
//!   while hiding that size from instrumentation — modelling
//!   `extern int arr[];` across translation units (§4.3, Table 2's bold
//!   benchmarks).
//! * `__libglobal` marks a global as residing in an uninstrumented library
//!   (never mirrored by Low-Fat Pointers).
//!
//! # Example
//!
//! ```
//! let module = cfront::compile(r#"
//!     long main(void) {
//!         int a[4];
//!         long s = 0;
//!         for (int i = 0; i < 4; i = i + 1) { a[i] = i; s = s + a[i]; }
//!         return s;
//!     }
//! "#).unwrap();
//! assert!(mir::verifier::verify_module(&module).is_ok());
//! ```

pub mod ast;
pub mod codegen;
pub mod lexer;
pub mod parser;

use std::fmt;

/// A frontend error with source line information.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CError {
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl CError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> CError {
        CError { line, message: message.into() }
    }
}

impl fmt::Display for CError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CError {}

/// Compiles mini-C source to a [`mir::Module`].
///
/// # Errors
///
/// Returns a [`CError`] for lexical, syntactic, or semantic problems.
pub fn compile(src: &str) -> Result<mir::Module, CError> {
    let tokens = lexer::lex(src)?;
    let unit = parser::parse(tokens)?;
    codegen::lower(&unit)
}

/// Compiles mini-C source to a [`mir::Module`], recording `file` as the
/// module's source file so diagnostics and profiles render `file:line`.
///
/// # Errors
///
/// Returns a [`CError`] for lexical, syntactic, or semantic problems.
pub fn compile_named(src: &str, file: &str) -> Result<mir::Module, CError> {
    let mut m = compile(src)?;
    m.src_file = Some(file.to_string());
    Ok(m)
}
