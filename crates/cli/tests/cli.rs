//! End-to-end tests of the `mi` binary.

use std::io::Write as _;
use std::process::Command;

fn mi() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mi"))
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("mi_cli_test_{name}"));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

const BUGGY: &str = r#"
long main(void) {
    long *p = (long*)malloc(8 * sizeof(long));
    p[8] = 1;
    print_i64(7);
    return 0;
}
"#;

const CLEAN: &str = r#"
long main(void) {
    long a[4];
    for (long i = 0; i < 4; i += 1) a[i] = i;
    print_i64(a[0] + a[3]);
    return 3;
}
"#;

#[test]
fn run_clean_program_prints_and_exits() {
    let path = write_temp("clean.c", CLEAN);
    let out = mi().args(["run", path.to_str().unwrap(), "--mech", "lowfat"]).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "3");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("checks"), "{err}");
}

#[test]
fn run_buggy_program_reports_violation() {
    let path = write_temp("buggy.c", BUGGY);
    let out = mi().args(["run", path.to_str().unwrap(), "--mech", "softbound"]).output().unwrap();
    assert_ne!(out.status.code(), Some(0));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("softbound: deref-check violation"), "{err}");
}

#[test]
fn check_summarizes_all_mechanisms() {
    let path = write_temp("check.c", BUGGY);
    let out = mi().args(["check", path.to_str().unwrap()]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["baseline", "softbound", "lowfat", "redzone"] {
        assert!(stdout.contains(needle), "{stdout}");
    }
    // p[8] is inside low-fat padding: only exact bounds and the red zone
    // report, so the overall verdict is non-zero.
    assert_ne!(out.status.code(), Some(0));
}

#[test]
fn ir_prints_instrumented_module() {
    let path = write_temp("ir.c", CLEAN);
    let out = mi()
        .args(["ir", path.to_str().unwrap(), "--mech", "lowfat", "--ep", "early"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("define i64 @main"), "{stdout}");
    assert!(stdout.contains("__lf_check"), "{stdout}");
    // The printed module must parse back.
    mir::parser::parse_module(&stdout).unwrap();
}

#[test]
fn stats_reports_static_and_dynamic() {
    let path = write_temp("stats.c", CLEAN);
    let out = mi().args(["stats", path.to_str().unwrap(), "--mech", "softbound"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("checks placed"), "{stdout}");
    assert!(stdout.contains("cost"), "{stdout}");
    assert!(out.status.success());
}

#[test]
fn bad_option_reports_usage() {
    let path = write_temp("usage.c", CLEAN);
    let out = mi().args(["run", path.to_str().unwrap(), "--mech", "bogus"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("bad --mech"), "{err}");
}

#[test]
fn frontend_error_is_reported_with_location() {
    let path = write_temp("broken.c", "long main(void) {\n  return nope;\n}");
    let out = mi().args(["run", path.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn eval_report_is_byte_identical_across_job_counts() {
    let path = write_temp("eval_det.c", CLEAN);
    let out1 = std::env::temp_dir().join("mi_cli_test_eval_j1.json");
    let out8 = std::env::temp_dir().join("mi_cli_test_eval_j8.json");
    for (jobs, out) in [("1", &out1), ("8", &out8)] {
        let st = mi()
            .args(["eval", path.to_str().unwrap(), "--jobs", jobs, "--out", out.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(st.status.success(), "{}", String::from_utf8_lossy(&st.stderr));
    }
    let j1 = std::fs::read_to_string(&out1).unwrap();
    let j8 = std::fs::read_to_string(&out8).unwrap();
    assert_eq!(j1, j8, "eval report must not depend on worker count");
    assert!(j1.contains("\"schema\": \"evald-report/2\""), "{j1}");
    assert!(j1.contains("\"frontend_reuses\": 13"), "{j1}");
}

#[test]
fn run_buggy_program_names_access_and_allocation_lines() {
    let path = write_temp("prov.c", BUGGY);
    let out = mi().args(["run", path.to_str().unwrap(), "--mech", "softbound"]).output().unwrap();
    assert_ne!(out.status.code(), Some(0));
    let err = String::from_utf8_lossy(&out.stderr);
    // ASan-style provenance: the access line (p[8] = 1 on line 4) and the
    // allocation line (malloc on line 3), both attributed to the file.
    assert!(err.contains("8-byte write at mi_cli_test_prov.c:4"), "{err}");
    assert!(
        err.contains("overflows 64-byte heap object allocated at mi_cli_test_prov.c:3"),
        "{err}"
    );
    assert!(err.contains("in @main (line 4)"), "{err}");
}

#[test]
fn profile_ranks_sites_and_reconciles() {
    let path = write_temp("profile.c", CLEAN);
    let out = mi().args(["profile", path.to_str().unwrap(), "--mech", "lowfat"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(= cost_checks)"), "{stdout}");
    assert!(stdout.contains("mi_cli_test_profile.c:"), "{stdout}");
    assert!(stdout.contains("deref"), "{stdout}");

    let out = mi()
        .args(["profile", path.to_str().unwrap(), "--mech", "lowfat", "--top", "2", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"schema\": \"mi-profile/1\""), "{json}");
    assert!(json.contains("\"config\": \"lowfat@O3@VectorizerStart\""), "{json}");
    assert!(json.contains("\"source\": \"mi_cli_test_profile.c:"), "{json}");
    // --top 2 caps the ranked list.
    assert!(!json.contains("\"rank\": 3"), "{json}");
}

#[test]
fn run_trace_writes_chrome_trace_json() {
    let path = write_temp("trace.c", CLEAN);
    let trace = std::env::temp_dir().join("mi_cli_test_run_trace.json");
    let out = mi()
        .args(["run", path.to_str().unwrap(), "--trace", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));
    let doc = std::fs::read_to_string(&trace).unwrap();
    assert!(doc.contains("\"traceEvents\""), "{doc}");
    assert!(doc.contains("\"ph\":\"X\""), "{doc}");
    assert!(doc.contains("plugin@VectorizerStart"), "{doc}");
}

#[test]
fn eval_trace_is_byte_identical_across_job_counts() {
    let path = write_temp("eval_trace.c", CLEAN);
    let t1 = std::env::temp_dir().join("mi_cli_test_eval_trace_j1.json");
    let t8 = std::env::temp_dir().join("mi_cli_test_eval_trace_j8.json");
    for (jobs, trace) in [("1", &t1), ("8", &t8)] {
        let st = mi()
            .args([
                "eval",
                path.to_str().unwrap(),
                "--jobs",
                jobs,
                "--out",
                std::env::temp_dir().join("mi_cli_test_eval_trace_rep.json").to_str().unwrap(),
                "--trace",
                trace.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(st.status.success(), "{}", String::from_utf8_lossy(&st.stderr));
    }
    let d1 = std::fs::read_to_string(&t1).unwrap();
    let d8 = std::fs::read_to_string(&t8).unwrap();
    assert_eq!(d1, d8, "eval trace must not depend on worker count");
    assert!(d1.contains("\"traceEvents\""), "{d1}");
    assert!(d1.contains("/prefix@O3@VectorizerStart\""), "{d1}");
    assert!(d1.contains("/softbound@O3@VectorizerStart\""), "{d1}");
}

#[test]
fn eval_reports_violations_as_cells_not_failures() {
    let path = write_temp("eval_buggy.c", BUGGY);
    let out = mi().args(["eval", path.to_str().unwrap(), "--jobs", "2"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"ok\": false"), "{json}");
    assert!(json.contains("deref-check"), "{json}");
    // The baseline cell of the same program still succeeds.
    assert!(json.contains("\"ok\": true"), "{json}");
}
