//! `mi` — the MemInstrument-RS command line.
//!
//! Mirrors the role of the paper artifact's compiler plugin: point it at a
//! (mini-)C file and compile, instrument, inspect, or execute it.
//!
//! ```text
//! mi run   prog.c [options]     compile + instrument + execute main()
//! mi ir    prog.c [options]     print the optimized (instrumented) IR
//! mi check prog.c               run under all three mechanisms, summarize
//! mi stats prog.c [options]     static + dynamic instrumentation statistics
//! mi profile prog.c [options] [--top N] [--json]
//!                               per-check-site execution profile: hottest /
//!                               widest check sites with source attribution;
//!                               totals reconcile exactly with the dynamic
//!                               VM statistics (--json: schema mi-profile/1)
//!
//! `prog.c` may also be a built-in benchmark name (e.g. `183equake`) for
//! every file-taking subcommand, including `mi eval`.
//! mi eval  [prog.c ...] [--jobs N] [--out report.json] [--timings]
//!          [--trace trace.json] [--metrics metrics.json]
//!          [--flame out.folded] [--sample-interval N]
//!                               run the full paper sweep (all mechanisms ×
//!                               variants × extension points) through the
//!                               parallel cached evaluation driver; with no
//!                               files, sweeps the built-in benchmark suite.
//!                               --metrics writes the unified mi-metrics/1
//!                               JSON (Prometheus text if the path ends in
//!                               .prom); --flame writes one merged
//!                               collapsed-stack profile with program;config
//!                               root frames — both byte-identical across
//!                               --jobs and --vm
//! mi fuzz  [--seed S] [--cases N] [--jobs N] [--fail-dir DIR]
//!          [--no-shrink] [--replay IDX]
//!                               generative differential fuzzing: run N
//!                               (safe, mutant) cases through the
//!                               14-configuration oracle matrix; exits 1 on
//!                               any false positive/negative, writing
//!                               minimized repros to --fail-dir. --replay
//!                               re-runs a single case verbosely.
//! mi serve [--socket PATH] [--workers N] [--queue N] [--deadline-ms N]
//!          [--vm walk|bytecode]
//!                               instrumentation-as-a-service daemon: accept
//!                               mi-serve/1 jobs (compile/run/profile) over a
//!                               Unix domain socket, executed on a bounded
//!                               worker pool against one shared
//!                               content-addressed artifact store. Results
//!                               are byte-identical to the in-process
//!                               driver/CLI. Stops when a client sends a
//!                               shutdown op (drains first).
//! mi bench-serve [--clients N] [--requests N] [--action compile|run]
//!                [--programs N] [--socket PATH] [--vm walk|bytecode]
//!                               closed-loop daemon throughput benchmark:
//!                               drive the job matrix through N pipelined
//!                               clients twice (cold store, then warm) and
//!                               report req/s and p50/p90/p99 latency per
//!                               pass. Without --socket an in-process daemon
//!                               is started and shut down automatically.
//!
//! options:
//!   --mech softbound|lowfat|redzone|none    mechanism (default softbound;
//!                                           sb/lf/rz short forms accepted)
//!   --ep early|scalar|vectorizer            extension point (default vectorizer)
//!   --O0                                    disable the optimization pipeline
//!   --mode full|invariants                  -mi-mode= (default full)
//!   --no-opt-dominance                      disable §5.3 dominance elimination
//!   --no-opt-loops                          disable §5.3 loop hoisting/widening
//!   --no-opt-ipo                            disable interprocedural summary-based
//!                                           check elision (mir::analysis::ipo)
//!   --narrow                                Appendix-B member-bounds narrowing
//!   --wrapper-checks                        enable Figure-6 wrapper checks
//!   --vm walk|bytecode                      VM backend (default bytecode; the
//!                                           tree-walker is the reference
//!                                           semantics; also on eval and fuzz)
//!   --connect PATH                          (run) submit the program to a
//!                                           running `mi serve` daemon instead
//!                                           of executing in-process; output
//!                                           and exit code are identical
//!   --trace trace.json                      (run) write a Chrome trace_event
//!                                           JSON of the pass pipeline,
//!                                           viewable in Perfetto
//!   --flame out.folded                      (run/profile) write the
//!                                           cost-driven sampling profile as
//!                                           inferno-compatible collapsed
//!                                           stacks; deterministic (clocked
//!                                           by the cost model, not time)
//!   --sample-interval N                     cost units between flame samples
//!                                           (default 1000 when --flame is
//!                                           given, otherwise sampling is off)
//! ```

use std::process::ExitCode;
use std::str::FromStr;

use meminstrument::{Instrument, Mechanism, MiMode, OptConfig};
use memvm::{VmBackend, VmConfig};
use mir::pipeline::{ExtensionPoint, OptLevel};
use mir::trace::TraceRecorder;

fn usage() -> ExitCode {
    eprintln!("usage: mi <run|ir|check|stats> <file.c> [options]");
    eprintln!("       mi profile <file.c> [options] [--top N] [--json]");
    eprintln!("       mi eval [file.c ...] [--jobs N] [--out report.json] [--timings]");
    eprintln!("               [--trace trace.json] [--vm walk|bytecode]");
    eprintln!("               [--metrics metrics.json] [--flame out.folded]");
    eprintln!("               [--sample-interval N]");
    eprintln!("       mi fuzz [--seed S] [--cases N] [--jobs N] [--fail-dir DIR]");
    eprintln!("               [--no-shrink] [--replay IDX] [--vm walk|bytecode]");
    eprintln!("       mi serve [--socket PATH] [--workers N] [--queue N] [--deadline-ms N]");
    eprintln!("       mi bench-serve [--clients N] [--requests N] [--action compile|run]");
    eprintln!("               [--programs N] [--socket PATH]");
    eprintln!("       (see `crates/cli/src/main.rs` header for options)");
    ExitCode::from(2)
}

/// Sample interval used when `--flame` is requested without an explicit
/// `--sample-interval`: one stack sample per 1000 charged cost units.
const DEFAULT_SAMPLE_INTERVAL: u64 = 1000;

struct Options {
    /// The typed instrumentation cell built from the command line; its
    /// `Display` form is the stable configuration label shared with the
    /// driver, fuzzer, and eval reports.
    cell: Instrument,
    trace: Option<String>,
    /// Collapsed-stack output path for the cost-driven flame sampler.
    flame: Option<String>,
    /// Effective sampling interval (non-zero iff sampling is on).
    sample_interval: u64,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut mech = Some(Mechanism::SoftBound);
    let mut ep = ExtensionPoint::VectorizerStart;
    let mut opt_level = OptLevel::O3;
    let mut mode = MiMode::Full;
    let mut opt = OptConfig::default();
    let mut narrow = false;
    let mut wrappers = false;
    let mut backend = VmBackend::default();
    let mut trace = None;
    let mut flame = None;
    let mut sample_interval = 0u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => match it.next() {
                Some(p) => trace = Some(p.clone()),
                None => return Err("--trace expects a path".to_string()),
            },
            "--flame" => match it.next() {
                Some(p) => flame = Some(p.clone()),
                None => return Err("--flame expects a path".to_string()),
            },
            "--sample-interval" => match it.next().and_then(|s| s.parse().ok()) {
                Some(0) | None => {
                    return Err("--sample-interval expects a positive number".to_string())
                }
                Some(n) => sample_interval = n,
            },
            "--mech" => {
                mech = match it.next().map(String::as_str) {
                    Some("none") => None,
                    Some(s) => {
                        Some(Mechanism::from_str(s).map_err(|_| format!("bad --mech {s:?}"))?)
                    }
                    None => return Err("--mech expects a mechanism".to_string()),
                }
            }
            "--ep" => {
                ep = match it.next().map(String::as_str) {
                    Some("early") => ExtensionPoint::ModuleOptimizerEarly,
                    Some("scalar") => ExtensionPoint::ScalarOptimizerLate,
                    Some("vectorizer") | Some("vec") => ExtensionPoint::VectorizerStart,
                    other => return Err(format!("bad --ep {other:?}")),
                }
            }
            "--O0" => opt_level = OptLevel::O0,
            "--mode" => {
                mode = match it.next().map(String::as_str) {
                    Some("full") => MiMode::Full,
                    Some("invariants") | Some("geninvariants") => MiMode::GenInvariantsOnly,
                    other => return Err(format!("bad --mode {other:?}")),
                }
            }
            "--no-opt-dominance" => opt.dominance = false,
            "--no-opt-loops" => {
                opt.loop_hoist = false;
                opt.loop_widen = false;
            }
            "--no-opt-ipo" => opt.ipo = false,
            "--narrow" => narrow = true,
            "--wrapper-checks" => wrappers = true,
            "--vm" => match it.next() {
                Some(s) => backend = VmBackend::from_str(s)?,
                None => return Err("--vm expects walk|bytecode".to_string()),
            },
            a if a.starts_with("--vm=") => backend = VmBackend::from_str(&a["--vm=".len()..])?,
            other => return Err(format!("unknown option {other}")),
        }
    }
    let cell = match mech {
        None => Instrument::baseline(),
        Some(m) => Instrument::mechanism(m).mode(mode).opt(opt).configure(|c| {
            c.sb_narrow_member_bounds = narrow;
            c.sb_wrapper_checks = wrappers;
        }),
    };
    if flame.is_some() && sample_interval == 0 {
        sample_interval = DEFAULT_SAMPLE_INTERVAL;
    }
    let cell =
        cell.at(ep).opt_level(opt_level).vm_backend(backend).sample_interval(sample_interval);
    Ok(Options { cell, trace, flame, sample_interval })
}

/// Writes the VM's folded flame profile to `path` (collapsed-stack text).
/// A no-op returning success when sampling was off.
fn write_flame(tag: &str, path: &str, vm: &memvm::Vm, interval: u64) -> Result<(), String> {
    let Some(f) = vm.flame() else { return Ok(()) };
    std::fs::write(path, f.render()).map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "[{tag}] flame profile ({} samples, 1 per {interval} cost units) written to {path}",
        f.total_samples()
    );
    Ok(())
}

/// Resolves `path` to a (source name, source text) pair: an on-disk file,
/// or — when no such file exists — a built-in benchmark name such as
/// `183equake`.
fn resolve_source(path: &str) -> Result<(String, String), String> {
    match std::fs::read_to_string(path) {
        Ok(src) => {
            let name = std::path::Path::new(path)
                .file_name()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.to_string());
            Ok((name, src))
        }
        Err(e) => match bench::driver::benchmark_programs().into_iter().find(|p| p.name == path) {
            Some(p) => Ok((format!("{}.c", p.name), p.source)),
            None => Err(format!("{path}: {e} (and no built-in benchmark has that name)")),
        },
    }
}

fn frontend(path: &str) -> Result<mir::Module, String> {
    let (name, src) = resolve_source(path)?;
    cfront::compile_named(&src, &name).map_err(|e| format!("{path}:{e}"))
}

fn build(module: mir::Module, o: &Options) -> meminstrument::CompiledProgram {
    o.cell.compile(module)
}

/// Like [`build`], recording a pass-pipeline trace into `rec`.
fn build_traced(
    module: mir::Module,
    o: &Options,
    rec: &mut TraceRecorder,
) -> meminstrument::CompiledProgram {
    o.cell.compile_traced(module, rec)
}

fn cmd_run(path: &str, o: &Options) -> ExitCode {
    let module = match frontend(path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let prog = match &o.trace {
        None => build(module, o),
        Some(trace_path) => {
            let mut rec = TraceRecorder::new();
            let prog = build_traced(module, o, &mut rec);
            if let Err(e) = std::fs::write(trace_path, rec.to_chrome_trace()) {
                eprintln!("error: {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "[mi] pipeline trace ({} pass spans) written to {trace_path}",
                rec.spans().len()
            );
            prog
        }
    };
    // Build the VM by hand (instead of `run_main`) so the flame profile
    // survives the run — including runs that end in a trap.
    let mut vm = match prog.make_vm(o.cell.vm_config()) {
        Ok(vm) => vm,
        Err(t) => {
            eprintln!("[mi] {t}");
            return ExitCode::FAILURE;
        }
    };
    let result = vm.run("main", &[]);
    if let Some(fp) = &o.flame {
        if let Err(e) = write_flame("mi", fp, &vm, o.sample_interval) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    match result {
        Ok(out) => {
            for line in &out.output {
                println!("{line}");
            }
            let ret = out.ret.map(|v| v.as_int() as i64).unwrap_or(0);
            eprintln!(
                "[mi] exit {ret}, cost {}, {} checks ({} wide)",
                out.stats.cost_total, out.stats.checks_executed, out.stats.checks_wide
            );
            ExitCode::from((ret & 0xFF) as u8)
        }
        Err(t) => {
            eprintln!("[mi] {t}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_ir(path: &str, o: &Options) -> ExitCode {
    match frontend(path) {
        Ok(module) => {
            let prog = build(module, o);
            print!("{}", mir::printer::print_module(&prog.module));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_check(path: &str) -> ExitCode {
    let module = match frontend(path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{path}:");
    let base = Instrument::baseline().compile(module.clone());
    match base.run_main(VmConfig::default()) {
        Ok(out) => {
            println!("  baseline : ok (exit {})", out.ret.map(|v| v.as_int() as i64).unwrap_or(0))
        }
        Err(t) => println!("  baseline : {t}"),
    }
    let mut verdict = 0;
    for mech in [Mechanism::SoftBound, Mechanism::LowFat, Mechanism::RedZone] {
        let prog = Instrument::mechanism(mech).compile(module.clone());
        match prog.run_main(VmConfig::default()) {
            Ok(out) => println!(
                "  {:9}: ok ({} checks, {:.2}% wide)",
                mech.name(),
                out.stats.checks_executed,
                out.stats.wide_check_percent()
            ),
            Err(t) => {
                println!("  {:9}: {t}", mech.name());
                verdict = 1;
            }
        }
    }
    ExitCode::from(verdict)
}

fn cmd_stats(path: &str, o: &Options) -> ExitCode {
    let module = match frontend(path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let base = Instrument::from_parts(None, o.cell.build_options()).compile(module.clone());
    let base_size: usize = base.module.functions.iter().map(|f| f.live_instr_count()).sum();
    let prog = build(module, o);
    let size: usize = prog.module.functions.iter().map(|f| f.live_instr_count()).sum();
    println!("static:");
    println!(
        "  code size        : {size} instrs ({:.2}x of baseline {base_size})",
        size as f64 / base_size.max(1) as f64
    );
    let s = &prog.stats;
    println!("  checks discovered: {}", s.checks_discovered);
    println!("  checks eliminated: {} ({:.1}%)", s.checks_eliminated, s.eliminated_percent());
    println!("  checks hoisted   : {}", s.checks_hoisted);
    println!("  checks widened   : {}", s.checks_widened);
    println!("  checks elided ipo: {}", s.checks_elided_ipo);
    println!("  checks placed    : {}", s.checks_placed);
    println!("  invariants placed: {}", s.invariants_placed);
    println!("  metadata loads   : {}", s.metadata_loads_placed);
    println!("  metadata stores  : {}", s.metadata_stores_placed);
    println!("  allocas replaced : {}", s.allocas_replaced);
    println!("  globals mirrored : {}", s.globals_mirrored);
    println!("  ipo summaries    : {}", s.summaries_computed);
    match (prog.run_main(o.cell.vm_config()), base.run_main(o.cell.vm_config())) {
        (Ok(out), Ok(b)) => {
            let d = &out.stats;
            println!("dynamic:");
            println!(
                "  cost             : {} ({:.2}x of baseline {})",
                d.cost_total,
                d.cost_total as f64 / b.stats.cost_total as f64,
                b.stats.cost_total
            );
            println!(
                "  checks executed  : {} ({:.2}% wide)",
                d.checks_executed,
                d.wide_check_percent()
            );
            println!("  invariant checks : {}", d.invariant_checks_executed);
            println!(
                "  metadata ops     : {} loads, {} stores",
                d.metadata_loads, d.metadata_stores
            );
            println!(
                "  mapped memory    : {} KiB ({:.2}x of baseline)",
                d.mapped_bytes / 1024,
                d.mapped_bytes as f64 / b.stats.mapped_bytes.max(1) as f64
            );
            ExitCode::SUCCESS
        }
        (Err(t), _) => {
            println!("dynamic: trapped — {t}");
            ExitCode::FAILURE
        }
        (_, Err(t)) => {
            println!("baseline trapped — {t}");
            ExitCode::FAILURE
        }
    }
}

/// `mi profile`: per-check-site execution profile with source attribution.
///
/// Compiles and runs one program, then joins the VM's per-site counters
/// ([`memvm::SiteProfile`]) with the module's `check_sites` table and ranks
/// sites by dynamic check cost (ties: hits, then site index). The totals
/// reconcile exactly with the aggregate VM statistics — asserted here, so
/// a drifting profile is a hard error, not a subtly wrong report.
fn cmd_profile(path: &str, args: &[String]) -> ExitCode {
    let mut top = 10usize;
    let mut json = false;
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--top" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => top = n,
                None => {
                    eprintln!("error: --top expects a number");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            other => rest.push(other.to_string()),
        }
    }
    let o = match parse_options(&rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let module = match frontend(path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let prog = build(module, &o);
    let src_file = prog.module.src_file.clone();
    let sites = prog.module.check_sites.clone();
    let mut vm = match prog.make_vm(o.cell.vm_config()) {
        Ok(vm) => vm,
        Err(t) => {
            eprintln!("[mi] {t}");
            return ExitCode::FAILURE;
        }
    };
    let result = vm.run("main", &[]);
    if let Some(fp) = &o.flame {
        if let Err(e) = write_flame("mi profile", fp, &vm, o.sample_interval) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let out = match result {
        Ok(out) => out,
        Err(t) => {
            eprintln!("[mi] {t}");
            return ExitCode::FAILURE;
        }
    };

    if json {
        // The daemon renders profile jobs through the same function, so
        // `mi profile --json` and a served profile job agree byte-for-byte.
        let ok = bench::driver::CellOk {
            ret: out.ret.map(|v| v.as_int() as i64),
            output: out.output,
            stats: out.stats,
            instr: prog.stats.clone(),
            profile: out.profile,
            ops: vm.op_metrics().clone(),
            mem: vm.memory().counters(),
            flame: vm.flame(),
        };
        print!("{}", bench::job::profile_report(&prog, &ok, path, &o.cell.to_string(), top));
        return ExitCode::SUCCESS;
    }

    let s = &out.stats;
    let (hits, wide, cost) =
        (out.profile.total_hits(), out.profile.total_wide(), out.profile.total_cost());
    assert_eq!(hits, s.checks_executed + s.invariant_checks_executed, "profile/stats drift");
    assert_eq!(wide, s.checks_wide, "profile/stats drift");
    assert_eq!(cost, s.cost_checks, "profile/stats drift");

    // Rank executed sites by cost, then hits; stable on site index.
    let mut ranked: Vec<(usize, memvm::SiteCounts)> =
        (0..sites.len()).map(|i| (i, out.profile.get(i))).filter(|(_, c)| c.hits > 0).collect();
    ranked.sort_by(|a, b| (b.1.cost, b.1.hits, a.0).cmp(&(a.1.cost, a.1.hits, b.0)));
    let sites_hit = ranked.len();
    ranked.truncate(top);

    let file_label = src_file.as_deref().unwrap_or(path);
    println!("[mi profile] {file_label} — {}", o.cell);
    println!("  check sites : {} registered, {sites_hit} hit", sites.len());
    println!(
        "  check hits  : {hits} (checks_executed {} + invariant_checks {})",
        s.checks_executed, s.invariant_checks_executed
    );
    println!("  wide checks : {wide} (= checks_wide)");
    println!("  check cost  : {cost} (= cost_checks)");
    if ranked.is_empty() {
        println!("  (no check sites executed)");
        return ExitCode::SUCCESS;
    }
    println!();
    println!(
        "  {:>4} {:>5}  {:<9} {:<14} {:<12} {:<14} {:>9} {:>7} {:>10}",
        "rank", "site", "kind", "source", "function", "access", "hits", "wide", "cost"
    );
    for (i, (site, c)) in ranked.iter().enumerate() {
        let cs = &sites[*site];
        println!(
            "  {:>4} {:>5}  {:<9} {:<14} {:<12} {:<14} {:>9} {:>7} {:>10}",
            i + 1,
            site,
            cs.kind.keyword(),
            cs.source(src_file.as_deref()),
            cs.func,
            cs.access_kind(),
            c.hits,
            c.wide,
            c.cost
        );
        if let Some(alloc) = cs.describe_alloc(src_file.as_deref()) {
            println!("  {:>4} {:>5}  guards {alloc}", "", "");
        }
    }
    ExitCode::SUCCESS
}

/// `mi eval`: the full paper sweep through the parallel cached driver.
///
/// Writes the `evald-report/2` JSON to `--out` (or stdout) and a one-line
/// summary per stage to stderr. Without `--timings` the JSON is
/// byte-identical for any `--jobs` value.
fn cmd_eval(args: &[String]) -> ExitCode {
    use bench::driver::{benchmark_programs, paper_sweep_configs, Driver, Program};
    let mut jobs = 0usize;
    let mut out_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut timings = false;
    let mut backend = VmBackend::default();
    let mut metrics_path: Option<String> = None;
    let mut flame_path: Option<String> = None;
    let mut sample_interval = 0u64;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" | "-j" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => jobs = n,
                None => {
                    eprintln!("error: --jobs expects a number");
                    return ExitCode::from(2);
                }
            },
            "--vm" => match it.next().map(|s| VmBackend::from_str(s)) {
                Some(Ok(b)) => backend = b,
                _ => {
                    eprintln!("error: --vm expects walk|bytecode");
                    return ExitCode::from(2);
                }
            },
            a if a.starts_with("--vm=") => match VmBackend::from_str(&a["--vm=".len()..]) {
                Ok(b) => backend = b,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            },
            "--out" | "-o" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("error: --out expects a path");
                    return ExitCode::from(2);
                }
            },
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p.clone()),
                None => {
                    eprintln!("error: --trace expects a path");
                    return ExitCode::from(2);
                }
            },
            "--metrics" => match it.next() {
                Some(p) => metrics_path = Some(p.clone()),
                None => {
                    eprintln!("error: --metrics expects a path");
                    return ExitCode::from(2);
                }
            },
            "--flame" => match it.next() {
                Some(p) => flame_path = Some(p.clone()),
                None => {
                    eprintln!("error: --flame expects a path");
                    return ExitCode::from(2);
                }
            },
            "--sample-interval" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => sample_interval = n,
                _ => {
                    eprintln!("error: --sample-interval expects a positive number");
                    return ExitCode::from(2);
                }
            },
            "--timings" => timings = true,
            f if !f.starts_with("--") => files.push(f.to_string()),
            other => {
                eprintln!("error: unknown eval option {other}");
                return ExitCode::from(2);
            }
        }
    }
    let programs: Vec<Program> = if files.is_empty() {
        benchmark_programs()
    } else {
        let mut programs = Vec::new();
        for f in &files {
            let source = match std::fs::read_to_string(f) {
                Ok(s) => s,
                Err(e) => {
                    // Fall back to a built-in benchmark name.
                    if let Some(p) = benchmark_programs().into_iter().find(|p| &p.name == f) {
                        programs.push(p);
                        continue;
                    }
                    eprintln!("error: {f}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let name = std::path::Path::new(f)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| f.clone());
            programs.push(Program { name, source });
        }
        programs
    };
    if flame_path.is_some() && sample_interval == 0 {
        sample_interval = DEFAULT_SAMPLE_INTERVAL;
    }
    let driver = Driver::new(programs, paper_sweep_configs())
        .with_jobs(jobs)
        .with_trace(trace_path.is_some())
        .with_vm(VmConfig { backend, sample_interval, ..VmConfig::default() });
    let report = driver.run();
    if let Some(p) = &trace_path {
        if let Err(e) = std::fs::write(p, report.trace_json()) {
            eprintln!("error: {p}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[mi eval] pipeline trace ({} tracks) written to {p}", report.traces.len());
    }
    let trapped = report.cells.iter().filter(|c| c.outcome.is_err()).count();
    let t = &report.timings;
    eprintln!(
        "[mi eval] {} cells ({} programs x {} configs), {} trapped, {} worker(s)",
        report.cells.len(),
        report.programs.len(),
        report.configs.len(),
        trapped,
        t.jobs
    );
    eprintln!(
        "[mi eval] cache: {} frontend compiles / {} reuses, {} prefixes / {} reuses",
        report.cache.frontend_compiles,
        report.cache.frontend_reuses,
        report.cache.prefix_compiles,
        report.cache.prefix_reuses
    );
    let mem = report.mem_totals();
    eprintln!(
        "[mi eval] hot-page cache: {} hits / {} misses ({:.1}% hit rate), {} demotions, {} pages materialized",
        mem.cache_hits,
        mem.cache_misses,
        100.0 * mem.cache_hits as f64 / (mem.cache_hits + mem.cache_misses).max(1) as f64,
        mem.cache_demotions,
        mem.pages_materialized
    );
    if let Some(p) = &flame_path {
        let folded = report.flame();
        if let Err(e) = std::fs::write(p, folded.render()) {
            eprintln!("error: {p}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[mi eval] flame profile ({} stacks, {} samples, 1 per {sample_interval} cost units) written to {p}",
            folded.iter().count(),
            folded.total_samples()
        );
    }
    if let Some(p) = &metrics_path {
        let reg = report.metrics();
        let (text, kind) = if p.ends_with(".prom") {
            (reg.to_prometheus(), "prometheus text")
        } else {
            (reg.to_json(), "mi-metrics/1")
        };
        if let Err(e) = std::fs::write(p, text) {
            eprintln!("error: {p}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[mi eval] metrics ({kind}) written to {p}");
    }
    eprintln!(
        "[mi eval] wall {:.2}s (stage totals: frontend {:.2}s, pipeline {:.2}s, instrument {:.2}s, vm-compile {:.2}s, execute {:.2}s) [{}]",
        t.wall.as_secs_f64(),
        t.frontend.as_secs_f64(),
        t.pipeline.as_secs_f64(),
        t.instrumentation.as_secs_f64(),
        t.vm_compile.as_secs_f64(),
        t.execution.as_secs_f64(),
        backend.name()
    );
    let json = report.to_json(timings);
    match out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, &json) {
                eprintln!("error: {p}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("[mi eval] report written to {p}");
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

/// `mi fuzz`: the generative differential fuzzer (see `crates/fuzz`).
///
/// The report on stdout is deterministic for a given `(--seed, --cases)`
/// pair — byte-identical across reruns and `--jobs` values. Exit code 0
/// means every case matched the guarantee matrix; 1 means at least one
/// false positive or false negative (minimized repros go to `--fail-dir`).
fn cmd_fuzz(args: &[String]) -> ExitCode {
    let mut opts = fuzz::FuzzOpts::default();
    let mut replay: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next().and_then(|s| s.parse().ok()).ok_or_else(|| format!("{name} expects a number"))
        };
        match a.as_str() {
            "--seed" => match num("--seed") {
                Ok(n) => opts.seed = n,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            },
            "--cases" | "-n" => match num("--cases") {
                Ok(n) => opts.cases = n,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            },
            "--jobs" | "-j" => match num("--jobs") {
                Ok(n) => opts.jobs = n.max(1) as usize,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            },
            "--replay" => match num("--replay") {
                Ok(n) => replay = Some(n),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            },
            "--fail-dir" => match it.next() {
                Some(p) => opts.fail_dir = Some(std::path::PathBuf::from(p)),
                None => {
                    eprintln!("error: --fail-dir expects a path");
                    return ExitCode::from(2);
                }
            },
            "--no-shrink" => opts.shrink = false,
            "--vm" => match it.next().map(|s| VmBackend::from_str(s)) {
                Some(Ok(b)) => opts.backend = b,
                _ => {
                    eprintln!("error: --vm expects walk|bytecode");
                    return ExitCode::from(2);
                }
            },
            a if a.starts_with("--vm=") => match VmBackend::from_str(&a["--vm=".len()..]) {
                Ok(b) => opts.backend = b,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown fuzz option {other}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(index) = replay {
        let (text, failed) = fuzz::replay(opts.seed, index);
        print!("{text}");
        return ExitCode::from(failed as u8);
    }
    let report = fuzz::fuzz(&opts);
    print!("{}", report.render());
    ExitCode::from(!report.ok() as u8)
}

/// `mi serve`: the foreground instrumentation-as-a-service daemon.
///
/// Binds the socket, then blocks until a client sends a `shutdown` op
/// (the daemon drains queued and running jobs before replying and
/// stopping). See `crates/serve` for the wire protocol.
fn cmd_serve(args: &[String]) -> ExitCode {
    let mut cfg = serve::ServerConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => match it.next() {
                Some(p) => cfg.socket = std::path::PathBuf::from(p),
                None => {
                    eprintln!("error: --socket expects a path");
                    return ExitCode::from(2);
                }
            },
            "--workers" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => cfg.workers = n,
                None => {
                    eprintln!("error: --workers expects a number");
                    return ExitCode::from(2);
                }
            },
            "--queue" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => cfg.queue_cap = n,
                _ => {
                    eprintln!("error: --queue expects a positive number");
                    return ExitCode::from(2);
                }
            },
            "--deadline-ms" => match it.next().and_then(|s| s.parse().ok()) {
                // 0 disables the default deadline entirely.
                Some(0) => cfg.default_deadline = None,
                Some(n) => cfg.default_deadline = Some(std::time::Duration::from_millis(n)),
                None => {
                    eprintln!("error: --deadline-ms expects a number (0 = none)");
                    return ExitCode::from(2);
                }
            },
            "--vm" => match it.next().map(|s| VmBackend::from_str(s)) {
                Some(Ok(b)) => cfg.vm.backend = b,
                _ => {
                    eprintln!("error: --vm expects walk|bytecode");
                    return ExitCode::from(2);
                }
            },
            a if a.starts_with("--vm=") => match VmBackend::from_str(&a["--vm=".len()..]) {
                Ok(b) => cfg.vm.backend = b,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown serve option {other}");
                return ExitCode::from(2);
            }
        }
    }
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        cfg.workers
    };
    let queue_cap = cfg.queue_cap;
    let socket = cfg.socket.clone();
    match serve::start(cfg) {
        Ok(server) => {
            eprintln!(
                "[mi serve] listening on {} ({workers} worker(s), queue cap {queue_cap}); \
                 send a shutdown op to stop",
                socket.display()
            );
            server.wait();
            eprintln!("[mi serve] stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {}: {e}", socket.display());
            ExitCode::FAILURE
        }
    }
}

/// One `mi bench-serve` pass: `clients` connections each drive
/// `per_client` jobs (round-robin over `specs`, rotated per client so
/// connections interleave distinct cells), keeping at most `window`
/// in flight. The window bounds pipelining so neither side's socket
/// buffer can fill with unread responses (an unbounded pipeline against
/// a small server queue deadlocks once the reader blocks writing
/// rejections), and it makes the latency numbers queue-depth-controlled.
/// Returns the pass wall clock and every request's submit-to-response
/// latency.
fn bench_serve_pass(
    socket: &std::path::Path,
    specs: &[bench::job::JobSpec],
    clients: usize,
    per_client: usize,
    window: usize,
) -> Result<(std::time::Duration, Vec<std::time::Duration>), String> {
    use std::time::Instant;
    let latencies = std::sync::Mutex::new(Vec::new());
    let failures = std::sync::Mutex::new(Vec::new());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let (latencies, failures) = (&latencies, &failures);
            scope.spawn(move || {
                let run = || -> Result<Vec<std::time::Duration>, String> {
                    let mut client = serve::Client::connect(socket)
                        .map_err(|e| format!("connect {}: {e}", socket.display()))?;
                    let mut sent = std::collections::HashMap::new();
                    let mut lat = Vec::with_capacity(per_client);
                    let mut submitted = 0;
                    while lat.len() < per_client {
                        while submitted < per_client && submitted - lat.len() < window {
                            let spec = specs[(submitted + c) % specs.len()].clone();
                            let id = client
                                .submit(serve::Op::Job { spec, deadline_ms: None })
                                .map_err(|e| format!("submit: {e}"))?;
                            sent.insert(id, Instant::now());
                            submitted += 1;
                        }
                        let resp = client.recv().map_err(|e| format!("recv: {e}"))?;
                        let done = Instant::now();
                        match &resp.body {
                            serve::ResponseBody::Ok { .. } => {}
                            serve::ResponseBody::Err(e) => {
                                return Err(format!("job {} failed: {e:?}", resp.id))
                            }
                        }
                        lat.push(done - sent[&resp.id]);
                    }
                    Ok(lat)
                };
                match run() {
                    Ok(mut lat) => latencies.lock().unwrap().append(&mut lat),
                    Err(e) => failures.lock().unwrap().push(format!("client {c}: {e}")),
                }
            });
        }
    });
    let wall = start.elapsed();
    let failures = failures.into_inner().unwrap();
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    Ok((wall, latencies.into_inner().unwrap()))
}

/// `mi bench-serve`: closed-loop daemon throughput benchmark.
///
/// Drives the benchmark-suite job matrix through pipelined clients twice:
/// the *cold* pass populates the shared artifact store, the *warm* pass
/// measures cache-served throughput. Latency is submission to response
/// under full pipelining (queueing + service — a saturation benchmark,
/// not an unloaded-latency one). Without `--socket` an in-process daemon
/// is started and shut down automatically.
fn cmd_bench_serve(args: &[String]) -> ExitCode {
    use bench::driver::{benchmark_programs, paper_sweep_configs};
    use bench::job::{job_matrix, JobAction};

    let mut clients = 2usize;
    let mut requests = 0usize; // 0 = one full matrix per client
    let mut window = 32usize;
    let mut action = JobAction::Compile;
    let mut action_name = "compile";
    let mut program_cap = 0usize;
    let mut socket_arg: Option<std::path::PathBuf> = None;
    let mut backend = VmBackend::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--clients" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => clients = n,
                _ => {
                    eprintln!("error: --clients expects a positive number");
                    return ExitCode::from(2);
                }
            },
            "--requests" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => requests = n,
                _ => {
                    eprintln!("error: --requests expects a positive number");
                    return ExitCode::from(2);
                }
            },
            "--programs" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => program_cap = n,
                _ => {
                    eprintln!("error: --programs expects a positive number");
                    return ExitCode::from(2);
                }
            },
            "--window" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => window = n,
                _ => {
                    eprintln!("error: --window expects a positive number");
                    return ExitCode::from(2);
                }
            },
            "--action" => match it.next().map(String::as_str) {
                Some("compile") => (action, action_name) = (JobAction::Compile, "compile"),
                Some("run") => (action, action_name) = (JobAction::Run, "run"),
                other => {
                    eprintln!("error: bad --action {other:?} (compile|run)");
                    return ExitCode::from(2);
                }
            },
            "--socket" => match it.next() {
                Some(p) => socket_arg = Some(std::path::PathBuf::from(p)),
                None => {
                    eprintln!("error: --socket expects a path");
                    return ExitCode::from(2);
                }
            },
            "--vm" => match it.next().map(|s| VmBackend::from_str(s)) {
                Some(Ok(b)) => backend = b,
                _ => {
                    eprintln!("error: --vm expects walk|bytecode");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown bench-serve option {other}");
                return ExitCode::from(2);
            }
        }
    }

    let mut programs = benchmark_programs();
    if program_cap > 0 {
        programs.truncate(program_cap);
    }
    let configs = paper_sweep_configs();
    let mut specs = job_matrix(&programs, &configs);
    for spec in &mut specs {
        spec.action = action;
        // Benchmark refs keep each request line ~100 bytes instead of the
        // full source text; the daemon resolves them to identical
        // artifacts (same name, same source, same content hash).
        spec.source = bench::job::SourceRef::Benchmark { name: spec.source.name().to_string() };
    }
    let per_client = if requests == 0 { specs.len() } else { requests };

    let (socket, server) = match socket_arg {
        Some(p) => (p, None),
        None => {
            let p =
                std::env::temp_dir().join(format!("mi-bench-serve-{}.sock", std::process::id()));
            let _ = std::fs::remove_file(&p);
            let cfg = serve::ServerConfig {
                socket: p.clone(),
                // Room for every client's full window; deadlines off so
                // slow debug builds measure throughput, not timeouts.
                queue_cap: (clients * window).max(256),
                default_deadline: None,
                vm: VmConfig { backend, ..VmConfig::default() },
                ..serve::ServerConfig::default()
            };
            match serve::start(cfg) {
                Ok(s) => (p, Some(s)),
                Err(e) => {
                    eprintln!("error: {}: {e}", p.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    eprintln!(
        "[mi bench-serve] {clients} client(s) x {per_client} {action_name} request(s), \
         window {window}, matrix {} program(s) x {} config(s){}",
        programs.len(),
        configs.len(),
        if server.is_some() { ", in-process daemon" } else { "" }
    );

    println!("pass  requests  wall_s  req_per_s   p50_ms   p90_ms   p99_ms");
    let mut rates = Vec::new();
    for pass in ["cold", "warm"] {
        match bench_serve_pass(&socket, &specs, clients, per_client, window) {
            Ok((wall, mut lat)) => {
                lat.sort();
                let rate = lat.len() as f64 / wall.as_secs_f64();
                let pct = |p: usize| lat[(lat.len() - 1) * p / 100].as_secs_f64() * 1e3;
                println!(
                    "{pass:<5} {:>8} {:>7.2} {:>9.1} {:>8.2} {:>8.2} {:>8.2}",
                    lat.len(),
                    wall.as_secs_f64(),
                    rate,
                    pct(50),
                    pct(90),
                    pct(99)
                );
                rates.push(rate);
            }
            Err(e) => {
                eprintln!("error: {pass} pass: {e}");
                if let Some(s) = server {
                    s.shutdown();
                }
                return ExitCode::FAILURE;
            }
        }
    }
    if let [cold, warm] = rates[..] {
        println!("warm/cold throughput: {:.2}x", warm / cold);
    }
    if let Some(s) = server {
        s.shutdown();
    }
    ExitCode::SUCCESS
}

/// `mi run --connect`: submit the program to a running daemon as a typed
/// `run` job instead of executing in-process. Output lines, the exit code,
/// and the stderr summary numbers match local `mi run` (the daemon's cell
/// JSON is the driver's, byte-for-byte).
fn cmd_run_connect(path: &str, socket: &str, o: &Options) -> ExitCode {
    use bench::json::Json;
    if o.trace.is_some() || o.flame.is_some() {
        eprintln!("error: --trace/--flame are not available with --connect");
        return ExitCode::from(2);
    }
    let (name, text) = match resolve_source(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = bench::job::JobSpec {
        source: bench::job::SourceRef::Inline { name, text },
        config: o.cell.clone(),
        action: bench::job::JobAction::Run,
    };
    let mut client = match serve::Client::connect(std::path::Path::new(socket)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {socket}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let resp = match client.call(serve::Op::Job { spec, deadline_ms: None }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {socket}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match resp.body {
        serve::ResponseBody::Ok { result } => result,
        serve::ResponseBody::Err(e) => {
            let msg = match e {
                bench::job::JobError::Timeout => "job deadline exceeded".to_string(),
                bench::job::JobError::Cancelled => "job cancelled".to_string(),
                bench::job::JobError::Rejected { reason } => reason,
                bench::job::JobError::Trap { report } => report,
            };
            eprintln!("[mi] job failed: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let cell = match Json::parse(&result) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: undecodable job result: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(lines) = cell.get("output").and_then(Json::as_arr) {
        for line in lines {
            if let Some(s) = line.as_str() {
                println!("{s}");
            }
        }
    }
    if cell.get("ok").and_then(Json::as_bool) != Some(true) {
        let trap = cell.get("trap").and_then(Json::as_str).unwrap_or("unknown trap");
        eprintln!("[mi] {trap}");
        return ExitCode::FAILURE;
    }
    let num = |k: &str| cell.get(k).and_then(Json::as_i64).unwrap_or(0);
    let ret = num("ret");
    eprintln!(
        "[mi] exit {ret}, cost {}, {} checks ({} wide) [served by {socket}]",
        num("cost"),
        num("checks_executed"),
        num("checks_wide")
    );
    ExitCode::from((ret & 0xFF) as u8)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => return usage(),
    };
    if cmd == "eval" {
        return cmd_eval(rest);
    }
    if cmd == "fuzz" {
        return cmd_fuzz(rest);
    }
    if cmd == "serve" {
        return cmd_serve(rest);
    }
    if cmd == "bench-serve" {
        return cmd_bench_serve(rest);
    }
    let (path, opt_args) = match rest.split_first() {
        Some((p, o)) if !p.starts_with("--") => (p.as_str(), o),
        _ => return usage(),
    };
    if cmd == "profile" {
        return cmd_profile(path, opt_args);
    }
    // `run` accepts `--connect PATH` ahead of the common options.
    let mut opt_args: Vec<String> = opt_args.to_vec();
    let mut connect: Option<String> = None;
    if cmd == "run" {
        if let Some(i) = opt_args.iter().position(|a| a == "--connect") {
            if i + 1 >= opt_args.len() {
                eprintln!("error: --connect expects a socket path");
                return ExitCode::from(2);
            }
            connect = Some(opt_args.remove(i + 1));
            opt_args.remove(i);
        }
    }
    let options = match parse_options(&opt_args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    match cmd {
        "run" => match connect {
            Some(socket) => cmd_run_connect(path, &socket, &options),
            None => cmd_run(path, &options),
        },
        "ir" => cmd_ir(path, &options),
        "check" => cmd_check(path),
        "stats" => cmd_stats(path, &options),
        _ => usage(),
    }
}
