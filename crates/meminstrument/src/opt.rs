//! Approach-independent check optimizations (§5.3).
//!
//! Three cooperating transformations run over the discovered check targets
//! before any code is emitted, so every mechanism (SoftBound, Low-Fat,
//! red-zone) benefits identically:
//!
//! 1. **Dominance elimination** ([`eliminate_dominated_checks`]): a check
//!    is removed when another check of the *same pointer* with at least
//!    the same access width dominates it — if the dominating check passed,
//!    the dominated one cannot fail. The paper reports 8–50 % of checks
//!    removed this way.
//! 2. **Loop-invariant hoisting** ([`optimize_loop_checks`]): a check of a
//!    loop-invariant pointer that provably executes whenever the loop is
//!    entered moves into the loop's dedicated preheader and runs once.
//! 3. **Induction-variable widening** ([`optimize_loop_checks`]): a check
//!    of `gep ty, base, [iv]` on a counted loop that executes on every
//!    iteration is replaced by a single preheader range check covering
//!    every byte the loop will access (`[first, last]` element), so the
//!    per-iteration checks disappear entirely.
//!
//! Both loop transformations are gated on a static proof that the guarded
//! access executes whenever the preheader does (trip count ≥ 1, the check
//! dominates every latch, and the loop has no side exits), so a hoisted or
//! widened check can only trap *earlier* — never on a program that was
//! safe without the optimization.

use std::collections::{BTreeSet, HashMap};

use mir::analysis::{
    dom::instr_dominates, ensure_dedicated_preheader, operand_is_invariant, Cfg, CountedLoop,
    DomTree, Loop, LoopForest,
};
use mir::function::ValueDef;
use mir::ids::BlockId;
use mir::instr::{InstrKind, Operand};
use mir::types::Type;
use mir::Function;

use crate::config::{Mechanism, OptConfig};
use crate::itarget::{CheckPlacement, CheckTarget, Targets};

/// Filters `targets.checks`, removing dominated redundant checks.
/// Returns the number of checks eliminated.
pub fn eliminate_dominated_checks(f: &Function, targets: &mut Targets) -> u64 {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);

    // Group checks by checked pointer (identical SSA operand).
    let mut groups: HashMap<Operand, Vec<usize>> = HashMap::new();
    for (i, c) in targets.checks.iter().enumerate() {
        groups.entry(c.ptr.clone()).or_default().push(i);
    }

    let mut dead = vec![false; targets.checks.len()];
    for idxs in groups.values() {
        for &a in idxs {
            if dead[a] {
                continue;
            }
            for &b in idxs {
                if a == b || dead[b] {
                    continue;
                }
                let (ca, cb): (&CheckTarget, &CheckTarget) =
                    (&targets.checks[a], &targets.checks[b]);
                if ca.width >= cb.width
                    && instr_dominates(f, &dom, (ca.block, ca.instr), (cb.block, cb.instr))
                {
                    dead[b] = true;
                }
            }
        }
    }

    let before = targets.checks.len();
    let mut keep = dead.iter().map(|d| !d);
    targets.checks.retain(|_| keep.next().unwrap());
    (before - targets.checks.len()) as u64
}

/// Result of one [`optimize_loop_checks`] run.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct LoopOptOutcome {
    /// Loop-invariant checks moved into a preheader.
    pub hoisted: u64,
    /// Induction-variable checks widened into a preheader range check.
    pub widened: u64,
    /// Preheader checks merged with an identical/covering one afterwards
    /// (counted into `checks_eliminated`).
    pub merged: u64,
}

/// Hoists loop-invariant checks and widens monotone induction-variable
/// checks into loop preheaders (may insert preheader blocks and `gep`s
/// into `f`). Must run before witness resolution; rewritten targets keep
/// their original access instruction so check-site provenance still names
/// the guarded access.
pub fn optimize_loop_checks(
    f: &mut Function,
    targets: &mut Targets,
    opt: &OptConfig,
    mechanism: Mechanism,
) -> LoopOptOutcome {
    let mut out = LoopOptOutcome::default();
    if !opt.loop_hoist && !opt.loop_widen {
        return out;
    }
    // Loops are optimized one per round: preheader insertion invalidates
    // the CFG analyses, so they are recomputed between rounds. Headers
    // identify loops across rounds (block ids are stable: blocks only
    // ever get appended).
    let mut handled: BTreeSet<BlockId> = BTreeSet::new();
    loop {
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        let Some(l) = forest.loops.iter().find(|l| !handled.contains(&l.header)) else {
            break;
        };
        handled.insert(l.header);
        let round = optimize_one_loop(f, &cfg, &dom, l, targets, opt, mechanism);
        out.hoisted += round.hoisted;
        out.widened += round.widened;
        out.merged += round.merged;
    }
    out
}

/// What a candidate check in the current loop becomes.
enum Plan {
    Hoist,
    Widen { base: Operand, elem_ty: Type, min_idx: i64, width: u64 },
}

fn optimize_one_loop(
    f: &mut Function,
    cfg: &Cfg,
    dom: &DomTree,
    l: &Loop,
    targets: &mut Targets,
    opt: &OptConfig,
    mechanism: Mechanism,
) -> LoopOptOutcome {
    let mut out = LoopOptOutcome::default();

    // Red-zone checks consult mutable shadow state: any call inside the
    // loop (allocators, frees, arbitrary functions) may poison or unpoison
    // granules mid-loop, so moving a red-zone check across iterations is
    // only sound in loops free of calls and bulk memory ops.
    if mechanism == Mechanism::RedZone && loop_has_calls(f, l) {
        return out;
    }

    let loop_defs = l.defined_values(f);
    let counted = CountedLoop::analyze(f, l).filter(|cl| cl.trip_count >= 1);
    // A side exit (any in-loop edge leaving the loop other than from the
    // header) could end the loop before the guarded access ran its full
    // range — the trip-count proof only covers single-exit loops.
    let single_exit =
        l.blocks.iter().all(|&b| b == l.header || cfg.succs(b).iter().all(|&s| l.contains(s)));
    let every_iteration = |b: BlockId| l.latches.iter().all(|&latch| dom.dominates(b, latch));

    let mut plans: Vec<(usize, Plan)> = Vec::new();
    for (i, c) in targets.checks.iter().enumerate() {
        if c.placement != CheckPlacement::AtAccess || !l.contains(c.block) {
            continue;
        }
        // Both transformations need the access to provably execute
        // whenever the preheader does. A check in the header always
        // executes once the loop is entered; anything deeper additionally
        // needs trip ≥ 1, no side exits, and execution on every iteration.
        let proven_deep = counted.is_some() && single_exit && every_iteration(c.block);
        // Widening additionally excludes header checks: the header runs
        // trip + 1 times (the final, failing test included), so a header
        // access sees the induction variable one step past `last` — a
        // byte the `[first, last]` hull does not cover.
        if opt.loop_widen && proven_deep && c.block != l.header {
            if let Some(cl) = &counted {
                if let Some(plan) = widen_plan(f, c, cl, &loop_defs, mechanism) {
                    plans.push((i, plan));
                    continue;
                }
            }
        }
        if opt.loop_hoist
            && operand_is_invariant(&c.ptr, &loop_defs)
            && (c.block == l.header || proven_deep)
        {
            plans.push((i, Plan::Hoist));
        }
    }
    if plans.is_empty() {
        return out;
    }
    let Some(pre) = ensure_dedicated_preheader(f, cfg, l) else {
        return out;
    };

    // Identical widened ranges share one preheader gep.
    let mut geps: HashMap<(Operand, Type, i64), Operand> = HashMap::new();
    for (i, plan) in plans {
        match plan {
            Plan::Hoist => {
                targets.checks[i].placement = CheckPlacement::BlockEnd(pre);
                out.hoisted += 1;
            }
            Plan::Widen { base, elem_ty, min_idx, width } => {
                let loc = f.instrs[targets.checks[i].instr.index()].loc;
                let ptr = geps
                    .entry((base.clone(), elem_ty.clone(), min_idx))
                    .or_insert_with(|| {
                        let pos = f.blocks[pre.index()].instrs.len();
                        let id = f.insert_instr(
                            pre,
                            pos,
                            InstrKind::Gep { elem_ty, base, indices: vec![Operand::i64(min_idx)] },
                        );
                        f.set_instr_loc(id, loc);
                        Operand::Val(f.instr_result(id).expect("gep has a result"))
                    })
                    .clone();
                let c = &mut targets.checks[i];
                c.ptr = ptr;
                c.width = width;
                c.placement = CheckPlacement::BlockEnd(pre);
                out.widened += 1;
            }
        }
    }

    // Merge preheader checks that now validate the same pointer: keep one
    // per pointer, carrying the widest range and the strongest access kind.
    let mut kept: HashMap<Operand, usize> = HashMap::new();
    let mut dead = vec![false; targets.checks.len()];
    for (i, d) in dead.iter_mut().enumerate() {
        if targets.checks[i].placement != CheckPlacement::BlockEnd(pre) {
            continue;
        }
        match kept.entry(targets.checks[i].ptr.clone()) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(i);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                let k = *e.get();
                let width = targets.checks[i].width;
                let is_store = targets.checks[i].is_store;
                let keeper = &mut targets.checks[k];
                keeper.width = keeper.width.max(width);
                keeper.is_store |= is_store;
                *d = true;
                out.merged += 1;
            }
        }
    }
    let mut keep = dead.iter().map(|d| !d);
    targets.checks.retain(|_| keep.next().unwrap());
    out
}

/// Whether the loop contains any call or bulk memory instruction.
fn loop_has_calls(f: &Function, l: &Loop) -> bool {
    l.blocks.iter().any(|&b| {
        f.blocks[b.index()].instrs.iter().any(|&iid| {
            matches!(
                f.instrs[iid.index()].kind,
                InstrKind::Call { .. }
                    | InstrKind::CallIndirect { .. }
                    | InstrKind::MemCpy { .. }
                    | InstrKind::MemSet { .. }
            )
        })
    })
}

/// Builds a widening plan for check `c` if its pointer is a single-index
/// `gep` of the loop's induction variable off a loop-invariant base and
/// the widened range is representable.
fn widen_plan(
    f: &Function,
    c: &CheckTarget,
    cl: &CountedLoop,
    loop_defs: &BTreeSet<mir::ids::ValueId>,
    mechanism: Mechanism,
) -> Option<Plan> {
    let v = c.ptr.as_value()?;
    let ValueDef::Instr(iid) = f.values[v.index()].def else {
        return None;
    };
    let InstrKind::Gep { elem_ty, base, indices } = &f.instrs[iid.index()].kind else {
        return None;
    };
    if indices.len() != 1 || indices[0].as_value() != Some(cl.iv) {
        return None;
    }
    if !operand_is_invariant(base, loop_defs) {
        return None;
    }
    let es = elem_ty.size_of();
    if es == 0 {
        return None;
    }
    // Red-zone shadow lookups inspect every granule in the checked range;
    // the union of the per-iteration accesses must therefore *cover* the
    // hull, or the widened check could hit a poisoned granule the loop
    // itself skips over. SoftBound and Low-Fat validate against a single
    // interval, where hull containment and per-access containment agree.
    if mechanism == Mechanism::RedZone && cl.step.unsigned_abs().saturating_mul(es) > c.width {
        return None;
    }
    let (min_idx, max_idx) = {
        let (a, b) = (cl.init, cl.last());
        (a.min(b), b.max(a))
    };
    // All byte arithmetic in i128: the hull must be addressable without
    // wrapping for the preheader check to mean what the per-iteration
    // checks meant.
    let es = es as i128;
    let first_byte = min_idx as i128 * es;
    let width = (max_idx as i128 - min_idx as i128) * es + c.width as i128;
    if first_byte.checked_add(width)? > i64::MAX as i128 || first_byte < i64::MIN as i128 {
        return None;
    }
    Some(Plan::Widen { base: base.clone(), elem_ty: elem_ty.clone(), min_idx, width: width as u64 })
}

/// One check dropped by [`elide_proven_checks`]: the summary-derived
/// precondition that justified the elision, kept for auditability (the
/// property suite replays these against the walker VM's per-access
/// bounds log).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ElisionRecord {
    /// Function containing the elided check.
    pub func: String,
    /// Source line of the guarded access, when known.
    pub line: Option<u32>,
    /// Checked width in bytes (the whole range for widened checks).
    pub width: u64,
    /// Proven byte-offset range of the checked pointer.
    pub off: (i64, i64),
    /// Proven minimum extent of the underlying allocation.
    pub size_min: u64,
}

/// Interprocedural check elision (the `mir::analysis::ipo` consumer):
/// recomputes per-value pointer facts for `f` under the whole-program
/// `summaries` and drops every check the facts prove in bounds of the
/// original allocation. Runs after the loop optimizations so widened
/// preheader range checks (whose pointer is a constant-index `gep` of
/// a summarized base) are themselves elidable.
///
/// SoftBound and Low-Fat elide on the spatial proof alone: SoftBound
/// bounds equal the allocation extent the summary reasons about, and a
/// Low-Fat size-class always contains the allocation. Both tolerate
/// in-bounds accesses to freed memory even with the check in place, so
/// the proof loses no temporal coverage. RedZone additionally demands
/// the access provably hits the *original, still-live* allocation —
/// its shadow poisons freed heap heads and dead stack frames, so heap
/// facts are only elidable while the module never calls `free`, and
/// stack facts must not have escaped a frame through a `ret`.
///
/// Returns the number of checks elided and appends one record each to
/// `records`.
pub fn elide_proven_checks(
    f: &Function,
    targets: &mut Targets,
    summaries: &mir::analysis::ipo::ModuleSummaries,
    env: &mir::analysis::ipo::FactEnv,
    mechanism: Mechanism,
    records: &mut Vec<ElisionRecord>,
) -> u64 {
    use mir::analysis::ipo::{operand_fact, value_facts, Provenance};

    if targets.checks.is_empty() {
        return 0;
    }
    let facts = value_facts(f, env, summaries);
    let before = targets.checks.len();
    targets.checks.retain(|c| {
        let Some(fact) = operand_fact(&c.ptr, &facts, env) else {
            return true; // bottom: no flow reached this value, keep
        };
        if !fact.proves_in_bounds(c.width) {
            return true;
        }
        let temporal_ok = match mechanism {
            Mechanism::SoftBound | Mechanism::LowFat => true,
            Mechanism::RedZone => {
                !fact.prov.contains(Provenance::STACK_RET)
                    && (!fact.prov.contains(Provenance::HEAP) || !env.has_free)
            }
        };
        if !temporal_ok {
            return true;
        }
        records.push(ElisionRecord {
            func: f.name.clone(),
            line: f.instrs[c.instr.index()].loc.map(|l| l.line),
            width: c.width,
            off: fact.off.expect("proven fact has a bounded offset"),
            size_min: fact.size_min,
        });
        false
    });
    (before - targets.checks.len()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itarget::discover;
    use mir::builder::ModuleBuilder;
    use mir::instr::IcmpPred;
    use mir::types::Type;
    use mir::verifier::verify_module;

    #[test]
    fn removes_same_block_duplicate() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr)], Type::I64);
        let p = fb.param(0);
        let a = fb.load(Type::I64, p.clone());
        let b = fb.load(Type::I64, p.clone());
        let s = fb.add(Type::I64, a, b);
        fb.ret(Some(s));
        fb.finish();
        let m = mb.finish();
        let f = m.function_by_name("f").unwrap().1;
        let mut t = discover(f);
        assert_eq!(t.checks.len(), 2);
        let removed = eliminate_dominated_checks(f, &mut t);
        assert_eq!(removed, 1);
        assert_eq!(t.checks.len(), 1);
    }

    #[test]
    fn narrower_dominating_check_does_not_cover_wider() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr)], Type::I64);
        let p = fb.param(0);
        let _a = fb.load(Type::I8, p.clone()); // 1-byte check first
        let b = fb.load(Type::I64, p.clone()); // 8-byte access NOT covered
        fb.ret(Some(b));
        fb.finish();
        let m = mb.finish();
        let f = m.function_by_name("f").unwrap().1;
        let mut t = discover(f);
        let removed = eliminate_dominated_checks(f, &mut t);
        assert_eq!(removed, 0);
    }

    #[test]
    fn wider_dominating_check_covers_narrower() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr)], Type::I64);
        let p = fb.param(0);
        let a = fb.load(Type::I64, p.clone());
        let _b = fb.load(Type::I8, p.clone());
        fb.ret(Some(a));
        fb.finish();
        let m = mb.finish();
        let f = m.function_by_name("f").unwrap().1;
        let mut t = discover(f);
        assert_eq!(eliminate_dominated_checks(f, &mut t), 1);
        assert_eq!(t.checks[0].width, 8);
    }

    #[test]
    fn dominance_across_blocks() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr), ("c", Type::I1)], Type::I64);
        let then_bb = fb.new_block("t");
        let exit = fb.new_block("x");
        let p = fb.param(0);
        let a = fb.load(Type::I64, p.clone());
        let c = fb.param(1);
        fb.cond_br(c, then_bb, exit);
        fb.switch_to(then_bb);
        let _b = fb.load(Type::I64, p.clone()); // dominated by entry load
        fb.br(exit);
        fb.switch_to(exit);
        fb.ret(Some(a));
        fb.finish();
        let m = mb.finish();
        let f = m.function_by_name("f").unwrap().1;
        let mut t = discover(f);
        assert_eq!(eliminate_dominated_checks(f, &mut t), 1);
    }

    #[test]
    fn sibling_branches_do_not_dominate() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr), ("n", Type::I64)], Type::I64);
        let t_bb = fb.new_block("t");
        let e_bb = fb.new_block("e");
        let x_bb = fb.new_block("x");
        let p = fb.param(0);
        let n = fb.param(1);
        let c = fb.icmp(IcmpPred::Sgt, Type::I64, n, Operand::i64(0));
        fb.cond_br(c, t_bb, e_bb);
        fb.switch_to(t_bb);
        let _a = fb.load(Type::I64, p.clone());
        fb.br(x_bb);
        fb.switch_to(e_bb);
        let _b = fb.load(Type::I64, p.clone());
        fb.br(x_bb);
        fb.switch_to(x_bb);
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        let m = mb.finish();
        let f = m.function_by_name("f").unwrap().1;
        let mut t = discover(f);
        assert_eq!(eliminate_dominated_checks(f, &mut t), 0);
    }

    #[test]
    fn different_pointers_kept() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr), ("q", Type::Ptr)], Type::I64);
        let p = fb.param(0);
        let q = fb.param(1);
        let a = fb.load(Type::I64, p);
        let b = fb.load(Type::I64, q);
        let s = fb.add(Type::I64, a, b);
        fb.ret(Some(s));
        fb.finish();
        let m = mb.finish();
        let f = m.function_by_name("f").unwrap().1;
        let mut t = discover(f);
        assert_eq!(eliminate_dominated_checks(f, &mut t), 0);
        assert_eq!(t.checks.len(), 2);
    }

    // ---------------------------------------------------------------
    // Loop hoisting / widening
    // ---------------------------------------------------------------

    /// `for (i = 0; i < 10; i++) p[i] = i;` followed by a load of p[9].
    const COUNTED_STORE: &str = r#"
        define i64 @f(ptr %p) {
        entry:
          br header
        header:
          %i = phi i64, [entry: i64 0], [body: %next]
          %c = icmp slt i64, %i, i64 10
          condbr %c, body, exit
        body:
          %q = gep i64, %p, [%i]
          store i64, %i, %q
          %next = add i64, %i, i64 1
          br header
        exit:
          %last = gep i64, %p, [i64 9]
          %v = load i64, %last
          ret %v
        }
    "#;

    fn run_loop_opt(src: &str, opt: OptConfig, mech: Mechanism) -> (Targets, LoopOptOutcome) {
        let mut m = mir::parser::parse_module(src).unwrap();
        let f = m.function_by_name_mut("f").unwrap();
        let mut t = discover(f);
        let out = optimize_loop_checks(f, &mut t, &opt, mech);
        verify_module(&m)
            .unwrap_or_else(|e| panic!("verify failed: {e}\n{}", mir::printer::print_module(&m)));
        (t, out)
    }

    #[test]
    fn widens_counted_loop_store() {
        let (t, out) = run_loop_opt(COUNTED_STORE, OptConfig::default(), Mechanism::SoftBound);
        assert_eq!(out, LoopOptOutcome { hoisted: 0, widened: 1, merged: 0 });
        let widened = t
            .checks
            .iter()
            .find(|c| matches!(c.placement, CheckPlacement::BlockEnd(_)))
            .expect("one widened check");
        // Bytes 0..80: elements 0..=9, 8 B each.
        assert_eq!(widened.width, 80);
        assert!(widened.is_store);
        // The exit load stays a plain access check.
        assert_eq!(t.checks.len(), 2);
    }

    #[test]
    fn widening_disabled_leaves_targets_alone() {
        let (t, out) = run_loop_opt(COUNTED_STORE, OptConfig::no_loops(), Mechanism::SoftBound);
        assert_eq!(out, LoopOptOutcome::default());
        assert!(t.checks.iter().all(|c| c.placement == CheckPlacement::AtAccess));
    }

    #[test]
    fn widens_descending_loop_to_full_range() {
        // for (i = 9; i >= 2; i--) p[i] = i  →  bytes 16..80 (width 64).
        let src = r#"
            define i64 @f(ptr %p) {
            entry:
              br header
            header:
              %i = phi i64, [entry: i64 9], [body: %next]
              %c = icmp sge i64, %i, i64 2
              condbr %c, body, exit
            body:
              %q = gep i64, %p, [%i]
              store i64, %i, %q
              %next = add i64, %i, i64 -1
              br header
            exit:
              ret i64 0
            }
        "#;
        let (t, out) = run_loop_opt(src, OptConfig::default(), Mechanism::LowFat);
        assert_eq!(out.widened, 1);
        assert_eq!(t.checks[0].width, 64);
    }

    #[test]
    fn zero_trip_loop_not_widened() {
        // for (i = 5; i < 5; ...) — never entered; a preheader check would
        // trap a program that accesses nothing.
        let src = r#"
            define i64 @f(ptr %p) {
            entry:
              br header
            header:
              %i = phi i64, [entry: i64 5], [body: %next]
              %c = icmp slt i64, %i, i64 5
              condbr %c, body, exit
            body:
              %q = gep i64, %p, [%i]
              store i64, %i, %q
              %next = add i64, %i, i64 1
              br header
            exit:
              ret i64 0
            }
        "#;
        let (t, out) = run_loop_opt(src, OptConfig::default(), Mechanism::SoftBound);
        assert_eq!(out, LoopOptOutcome::default());
        assert!(t.checks.iter().all(|c| c.placement == CheckPlacement::AtAccess));
    }

    #[test]
    fn side_exit_prevents_widening() {
        // A data-dependent break can end the loop before the range is
        // fully accessed: widening would over-approximate.
        let src = r#"
            define i64 @f(ptr %p, i64 %x) {
            entry:
              br header
            header:
              %i = phi i64, [entry: i64 0], [latch: %next]
              %c = icmp slt i64, %i, i64 100
              condbr %c, body, exit
            body:
              %b = icmp eq i64, %x, %i
              condbr %b, exit, work
            work:
              %q = gep i64, %p, [%i]
              store i64, %i, %q
              br latch
            latch:
              %next = add i64, %i, i64 1
              br header
            exit:
              ret i64 0
            }
        "#;
        let (t, out) = run_loop_opt(src, OptConfig::default(), Mechanism::SoftBound);
        assert_eq!(out, LoopOptOutcome::default());
        assert!(t.checks.iter().all(|c| c.placement == CheckPlacement::AtAccess));
    }

    #[test]
    fn hoists_invariant_pointer_check() {
        // for (i = 0; i < 10; i++) *p += 1 — invariant pointer, checked
        // once in the preheader (load + store merge into one check).
        let src = r#"
            define i64 @f(ptr %p) {
            entry:
              br header
            header:
              %i = phi i64, [entry: i64 0], [body: %next]
              %c = icmp slt i64, %i, i64 10
              condbr %c, body, exit
            body:
              %v = load i64, %p
              %w = add i64, %v, i64 1
              store i64, %w, %p
              %next = add i64, %i, i64 1
              br header
            exit:
              ret i64 0
            }
        "#;
        let (t, out) = run_loop_opt(src, OptConfig::default(), Mechanism::SoftBound);
        assert_eq!(out.hoisted, 2);
        assert_eq!(out.merged, 1, "load and store checks merge in the preheader");
        assert_eq!(t.checks.len(), 1);
        assert!(matches!(t.checks[0].placement, CheckPlacement::BlockEnd(_)));
        assert!(t.checks[0].is_store, "merged check keeps the store kind");
    }

    #[test]
    fn redzone_skips_loops_with_calls() {
        let src = r#"
            hostdecl i64 @work(i64)
            define i64 @f(ptr %p) {
            entry:
              br header
            header:
              %i = phi i64, [entry: i64 0], [body: %next]
              %c = icmp slt i64, %i, i64 10
              condbr %c, body, exit
            body:
              %q = gep i64, %p, [%i]
              store i64, %i, %q
              %z = call i64 @work(%i)
              %next = add i64, %i, i64 1
              br header
            exit:
              ret i64 0
            }
        "#;
        let (_, rz) = run_loop_opt(src, OptConfig::default(), Mechanism::RedZone);
        assert_eq!(rz, LoopOptOutcome::default());
        // SoftBound bounds are immutable SSA values: calls don't matter.
        let (_, sb) = run_loop_opt(src, OptConfig::default(), Mechanism::SoftBound);
        assert_eq!(sb.widened, 1);
    }

    #[test]
    fn redzone_requires_dense_coverage_for_widening() {
        // Stride 2 × 8 B with an 8 B access skips every other element;
        // the hull may contain poison the loop never touches.
        let src = r#"
            define i64 @f(ptr %p) {
            entry:
              br header
            header:
              %i = phi i64, [entry: i64 0], [body: %next]
              %c = icmp slt i64, %i, i64 10
              condbr %c, body, exit
            body:
              %q = gep i64, %p, [%i]
              store i64, %i, %q
              %next = add i64, %i, i64 2
              br header
            exit:
              ret i64 0
            }
        "#;
        let (_, rz) = run_loop_opt(src, OptConfig::default(), Mechanism::RedZone);
        assert_eq!(rz.widened, 0);
        // Interval-based mechanisms widen sparse strides soundly.
        let (t, lf) = run_loop_opt(src, OptConfig::default(), Mechanism::LowFat);
        assert_eq!(lf.widened, 1);
        // i ∈ {0, 2, 4, 6, 8}: bytes 0..72.
        assert_eq!(t.checks[0].width, 72);
    }

    #[test]
    fn widened_checks_share_the_preheader_gep() {
        // Load and store of p[i] in the same loop widen to the same range
        // and merge into a single preheader check.
        let src = r#"
            define i64 @f(ptr %p) {
            entry:
              br header
            header:
              %i = phi i64, [entry: i64 0], [body: %next]
              %c = icmp slt i64, %i, i64 10
              condbr %c, body, exit
            body:
              %q = gep i64, %p, [%i]
              %v = load i64, %q
              %w = add i64, %v, i64 1
              store i64, %w, %q
              %next = add i64, %i, i64 1
              br header
            exit:
              ret i64 0
            }
        "#;
        let (t, out) = run_loop_opt(src, OptConfig::default(), Mechanism::SoftBound);
        assert_eq!(out.widened, 2);
        assert_eq!(out.merged, 1);
        assert_eq!(t.checks.len(), 1);
        assert_eq!(t.checks[0].width, 80);
        assert!(t.checks[0].is_store);
    }

    // ---------------------------------------------------------------
    // Interprocedural elision
    // ---------------------------------------------------------------

    /// Runs summarize + elide over function `fname` of `src` under
    /// `mech`; returns (kept checks, elided count, records).
    fn run_elide(src: &str, fname: &str, mech: Mechanism) -> (Targets, u64, Vec<ElisionRecord>) {
        let m = mir::parser::parse_module(src).unwrap();
        let summaries = mir::analysis::ipo::summarize(&m);
        let env = mir::analysis::ipo::FactEnv::collect(&m);
        let f = m.function_by_name(fname).unwrap().1;
        let mut t = discover(f);
        let mut records = Vec::new();
        let n = elide_proven_checks(f, &mut t, &summaries, &env, mech, &mut records);
        (t, n, records)
    }

    const CROSS_FN: &str = r#"
        hostdecl ptr @malloc(i64)
        define i64 @main() {
        entry:
          %p = call ptr @malloc(i64 80)
          %r = call i64 @reader(%p)
          ret %r
        }
        define i64 @reader(ptr %p) {
        entry:
          %in = gep i64, %p, [i64 9]
          %v = load i64, %in
          %out = gep i64, %p, [i64 10]
          %w = load i64, %out
          %s = add i64, %v, %w
          ret %s
        }
    "#;

    #[test]
    fn elides_proven_cross_function_access_keeps_unproven() {
        for mech in [Mechanism::SoftBound, Mechanism::LowFat, Mechanism::RedZone] {
            let (t, n, records) = run_elide(CROSS_FN, "reader", mech);
            // p[9] is bytes 72..80 of an 80-byte allocation: proven.
            // p[10] is bytes 80..88: out of bounds, the check stays.
            assert_eq!(n, 1, "{mech:?}");
            assert_eq!(t.checks.len(), 1, "{mech:?}");
            assert_eq!(records.len(), 1);
            assert_eq!(records[0].func, "reader");
            assert_eq!(records[0].off, (72, 72));
            assert_eq!(records[0].size_min, 80);
        }
    }

    #[test]
    fn redzone_keeps_heap_elisions_when_free_is_reachable() {
        let src = r#"
            hostdecl ptr @malloc(i64)
            hostdecl void @free(ptr)
            define i64 @main() {
            entry:
              %p = call ptr @malloc(i64 16)
              %v = load i64, %p
              call void @free(%p)
              ret %v
            }
        "#;
        // Spatially proven for everyone; RedZone also needs the temporal
        // proof, which `free` in the module denies for heap facts.
        let (_, sb, _) = run_elide(src, "main", Mechanism::SoftBound);
        assert_eq!(sb, 1);
        let (_, lf, _) = run_elide(src, "main", Mechanism::LowFat);
        assert_eq!(lf, 1);
        let (t, rz, _) = run_elide(src, "main", Mechanism::RedZone);
        assert_eq!(rz, 0);
        assert_eq!(t.checks.len(), 1);
    }

    #[test]
    fn redzone_keeps_stack_pointers_that_escaped_a_return() {
        let src = r#"
            define ptr @make() {
            entry:
              %a = alloca i64, i64 4
              ret %a
            }
            define i64 @main() {
            entry:
              %p = call ptr @make()
              %v = load i64, %p
              ret %v
            }
        "#;
        // The frame is dead at the load: RedZone's shadow may have
        // repoisoned it. SoftBound/Low-Fat are spatial-only and elide.
        let (_, sb, _) = run_elide(src, "main", Mechanism::SoftBound);
        assert_eq!(sb, 1);
        let (_, rz, _) = run_elide(src, "main", Mechanism::RedZone);
        assert_eq!(rz, 0);
    }

    #[test]
    fn unknown_provenance_is_never_elided() {
        let src = r#"
            define i64 @main(ptr %p) {
            entry:
              %v = load i64, %p
              ret %v
            }
        "#;
        // main is an entry point: its params are TOP.
        for mech in [Mechanism::SoftBound, Mechanism::LowFat, Mechanism::RedZone] {
            let (t, n, records) = run_elide(src, "main", mech);
            assert_eq!(n, 0);
            assert_eq!(t.checks.len(), 1);
            assert!(records.is_empty());
        }
    }

    #[test]
    fn widened_range_check_is_elidable_after_loop_opt() {
        let src = r#"
            hostdecl ptr @malloc(i64)
            define i64 @main() {
            entry:
              %p = call ptr @malloc(i64 80)
              %r = call i64 @f(%p)
              ret %r
            }
            define i64 @f(ptr %p) {
            entry:
              br header
            header:
              %i = phi i64, [entry: i64 0], [body: %next]
              %c = icmp slt i64, %i, i64 10
              condbr %c, body, exit
            body:
              %q = gep i64, %p, [%i]
              store i64, %i, %q
              %next = add i64, %i, i64 1
              br header
            exit:
              ret i64 0
            }
        "#;
        let mut m = mir::parser::parse_module(src).unwrap();
        let summaries = mir::analysis::ipo::summarize(&m);
        let env = mir::analysis::ipo::FactEnv::collect(&m);
        let f = m.function_by_name_mut("f").unwrap();
        let mut t = discover(f);
        let out = optimize_loop_checks(f, &mut t, &OptConfig::default(), Mechanism::SoftBound);
        assert_eq!(out.widened, 1);
        // The widened preheader check covers bytes 0..80 of the 80-byte
        // summary extent — provable, so the whole loop runs check-free.
        let mut records = Vec::new();
        let n =
            elide_proven_checks(f, &mut t, &summaries, &env, Mechanism::SoftBound, &mut records);
        assert_eq!(n, 1);
        assert!(t.checks.is_empty());
        assert_eq!(records[0].width, 80);
    }

    #[test]
    fn access_ending_exactly_at_bound_is_proven() {
        let src = r#"
            hostdecl ptr @malloc(i64)
            define i64 @main() {
            entry:
              %p = call ptr @malloc(i64 80)
              %edge = gep i64, %p, [i64 9]
              %v = load i64, %edge
              %past = gep i32, %edge, [i32 1]
              %w = load i32, %past
              %s = add i64, %v, %w
              ret %s
            }
        "#;
        // %edge loads bytes 72..80 and %past bytes 76..80: both end
        // exactly at the 80-byte extent, which is still in bounds
        // (`hi + width <= size_min`). One byte further would fail.
        let (t, n, _) = run_elide(src, "main", Mechanism::SoftBound);
        assert_eq!(n, 2);
        assert!(t.checks.is_empty());
    }
}
