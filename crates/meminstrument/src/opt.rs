//! Approach-independent check optimizations (§5.3).
//!
//! The dominance-based elimination removes a check when another check of
//! the *same pointer* with at least the same access width dominates it: if
//! the dominating check passed, the dominated one cannot fail. The paper
//! reports 8–50 % of checks removed this way, with minor runtime impact
//! because the compiler's own redundancy elimination is already effective.

use std::collections::HashMap;

use mir::analysis::{dom::instr_dominates, Cfg, DomTree};
use mir::instr::Operand;
use mir::Function;

use crate::itarget::{CheckTarget, Targets};

/// Filters `targets.checks`, removing dominated redundant checks.
/// Returns the number of checks eliminated.
pub fn eliminate_dominated_checks(f: &Function, targets: &mut Targets) -> u64 {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);

    // Group checks by checked pointer (identical SSA operand).
    let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, c) in targets.checks.iter().enumerate() {
        groups.entry(operand_key(&c.ptr)).or_default().push(i);
    }

    let mut dead = vec![false; targets.checks.len()];
    for idxs in groups.values() {
        for &a in idxs {
            if dead[a] {
                continue;
            }
            for &b in idxs {
                if a == b || dead[b] {
                    continue;
                }
                let (ca, cb): (&CheckTarget, &CheckTarget) =
                    (&targets.checks[a], &targets.checks[b]);
                if ca.width >= cb.width
                    && instr_dominates(f, &dom, (ca.block, ca.instr), (cb.block, cb.instr))
                {
                    dead[b] = true;
                }
            }
        }
    }

    let before = targets.checks.len();
    let mut keep = dead.iter().map(|d| !d);
    targets.checks.retain(|_| keep.next().unwrap());
    (before - targets.checks.len()) as u64
}

fn operand_key(op: &Operand) -> String {
    format!("{op:?}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itarget::discover;
    use mir::builder::ModuleBuilder;
    use mir::instr::IcmpPred;
    use mir::types::Type;

    #[test]
    fn removes_same_block_duplicate() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr)], Type::I64);
        let p = fb.param(0);
        let a = fb.load(Type::I64, p.clone());
        let b = fb.load(Type::I64, p.clone());
        let s = fb.add(Type::I64, a, b);
        fb.ret(Some(s));
        fb.finish();
        let m = mb.finish();
        let f = m.function_by_name("f").unwrap().1;
        let mut t = discover(f);
        assert_eq!(t.checks.len(), 2);
        let removed = eliminate_dominated_checks(f, &mut t);
        assert_eq!(removed, 1);
        assert_eq!(t.checks.len(), 1);
    }

    #[test]
    fn narrower_dominating_check_does_not_cover_wider() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr)], Type::I64);
        let p = fb.param(0);
        let _a = fb.load(Type::I8, p.clone()); // 1-byte check first
        let b = fb.load(Type::I64, p.clone()); // 8-byte access NOT covered
        fb.ret(Some(b));
        fb.finish();
        let m = mb.finish();
        let f = m.function_by_name("f").unwrap().1;
        let mut t = discover(f);
        let removed = eliminate_dominated_checks(f, &mut t);
        assert_eq!(removed, 0);
    }

    #[test]
    fn wider_dominating_check_covers_narrower() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr)], Type::I64);
        let p = fb.param(0);
        let a = fb.load(Type::I64, p.clone());
        let _b = fb.load(Type::I8, p.clone());
        fb.ret(Some(a));
        fb.finish();
        let m = mb.finish();
        let f = m.function_by_name("f").unwrap().1;
        let mut t = discover(f);
        assert_eq!(eliminate_dominated_checks(f, &mut t), 1);
        assert_eq!(t.checks[0].width, 8);
    }

    #[test]
    fn dominance_across_blocks() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr), ("c", Type::I1)], Type::I64);
        let then_bb = fb.new_block("t");
        let exit = fb.new_block("x");
        let p = fb.param(0);
        let a = fb.load(Type::I64, p.clone());
        let c = fb.param(1);
        fb.cond_br(c, then_bb, exit);
        fb.switch_to(then_bb);
        let _b = fb.load(Type::I64, p.clone()); // dominated by entry load
        fb.br(exit);
        fb.switch_to(exit);
        fb.ret(Some(a));
        fb.finish();
        let m = mb.finish();
        let f = m.function_by_name("f").unwrap().1;
        let mut t = discover(f);
        assert_eq!(eliminate_dominated_checks(f, &mut t), 1);
    }

    #[test]
    fn sibling_branches_do_not_dominate() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr), ("n", Type::I64)], Type::I64);
        let t_bb = fb.new_block("t");
        let e_bb = fb.new_block("e");
        let x_bb = fb.new_block("x");
        let p = fb.param(0);
        let n = fb.param(1);
        let c = fb.icmp(IcmpPred::Sgt, Type::I64, n, Operand::i64(0));
        fb.cond_br(c, t_bb, e_bb);
        fb.switch_to(t_bb);
        let _a = fb.load(Type::I64, p.clone());
        fb.br(x_bb);
        fb.switch_to(e_bb);
        let _b = fb.load(Type::I64, p.clone());
        fb.br(x_bb);
        fb.switch_to(x_bb);
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        let m = mb.finish();
        let f = m.function_by_name("f").unwrap().1;
        let mut t = discover(f);
        assert_eq!(eliminate_dominated_checks(f, &mut t), 0);
    }

    #[test]
    fn different_pointers_kept() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr), ("q", Type::Ptr)], Type::I64);
        let p = fb.param(0);
        let q = fb.param(1);
        let a = fb.load(Type::I64, p);
        let b = fb.load(Type::I64, q);
        let s = fb.add(Type::I64, a, b);
        fb.ret(Some(s));
        fb.finish();
        let m = mb.finish();
        let f = m.function_by_name("f").unwrap().1;
        let mut t = discover(f);
        assert_eq!(eliminate_dominated_checks(f, &mut t), 0);
        assert_eq!(t.checks.len(), 2);
    }

    use mir::instr::Operand;
}
