//! The runtime environment: host-function implementations of the
//! instrumentation interface, plus end-to-end compile/run helpers.
//!
//! This plays the role of the "linked runtime library" in Figure 8 of the
//! paper: check functions, the SoftBound metadata structures, and the
//! Low-Fat allocators. For Low-Fat Pointers, the default `malloc` is
//! replaced wholesale (heap allocations become low-fat even when made from
//! uninstrumented code, §4.3) and instrumented globals are placed into
//! low-fat regions by a [`memvm::interp::GlobalPlacer`].

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use lowfat::{alloc_size, base_of, is_low_fat, region_of, LowFatHeap, LowFatStack, StackToken};
use memvm::cost::helper;
use memvm::host::BumpAllocator;
use memvm::interp::{ExecOutcome, GlobalPlacer, Trap, Vm, VmConfig};
use memvm::{CostCategory, RtVal};
use mir::analysis::ipo::ModuleSummaries;
use mir::module::{Global, Module};
use mir::pipeline::{ExtensionPoint, OptLevel, Pipeline};
use mir::srcloc::{CheckSite, SiteKind};
use mir::trace::TraceRecorder;
use softbound_rt::{Bounds, MetadataTrie, ShadowStack};

use crate::config::{Mechanism, MiConfig};
use crate::opt::ElisionRecord;
use crate::pass::MemInstrumentPass;
use crate::stats::InstrStats;

/// Pipeline options for compilation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BuildOptions {
    /// Optimization level.
    pub opt: OptLevel,
    /// Where the instrumentation is inserted (ignored for baselines).
    pub ep: ExtensionPoint,
}

impl Default for BuildOptions {
    fn default() -> BuildOptions {
        // The paper's Figure 9 configuration.
        BuildOptions { opt: OptLevel::O3, ep: ExtensionPoint::VectorizerStart }
    }
}

/// An instrumented (or baseline) module ready to execute.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// The optimized, instrumented module.
    pub module: Module,
    /// The mechanism (`None` for the uninstrumented baseline).
    pub mechanism: Option<Mechanism>,
    /// Static instrumentation statistics.
    pub stats: InstrStats,
    /// Check sites dropped by interprocedural summary proof, with the
    /// proof each elision rests on (empty unless IPO ran).
    pub elisions: Vec<ElisionRecord>,
}

/// Compiles `module` with instrumentation per `config` at the extension
/// point in `opts`.
pub fn compile(module: Module, config: &MiConfig, opts: BuildOptions) -> CompiledProgram {
    compile_from_prefix(pipeline_prefix(module, opts), config, opts)
}

/// Like [`compile`], recording a per-pass span (including the
/// instrumentation plugin) in `rec`.
pub fn compile_traced(
    mut module: Module,
    config: &MiConfig,
    opts: BuildOptions,
    rec: &mut TraceRecorder,
) -> CompiledProgram {
    let p = Pipeline::new(opts.opt);
    p.run_to_traced(&mut module, opts.ep, rec);
    let mut pass = MemInstrumentPass::new(config.clone());
    p.resume_at_traced(&mut module, opts.ep, Some(&mut pass), rec);
    CompiledProgram {
        module,
        mechanism: Some(config.mechanism),
        stats: pass.stats,
        elisions: pass.elisions,
    }
}

/// Compiles `module` without instrumentation (the `-O3` baseline of the
/// paper's figures).
pub fn compile_baseline(module: Module, opts: BuildOptions) -> CompiledProgram {
    compile_baseline_from_prefix(pipeline_prefix(module, opts), opts)
}

/// Like [`compile_baseline`], recording a per-pass span in `rec`.
pub fn compile_baseline_traced(
    mut module: Module,
    opts: BuildOptions,
    rec: &mut TraceRecorder,
) -> CompiledProgram {
    let p = Pipeline::new(opts.opt);
    p.run_to_traced(&mut module, opts.ep, rec);
    p.resume_at_traced(&mut module, opts.ep, None, rec);
    CompiledProgram { module, mechanism: None, stats: InstrStats::default(), elisions: Vec::new() }
}

/// Runs the pipeline stages *before* the extension point in `opts` and
/// returns the module in the state an instrumentation pass would observe.
///
/// The result is a reusable snapshot: it only depends on (module, opt
/// level, extension point), so the evaluation driver caches it and
/// completes compilation per mechanism with [`compile_from_prefix`] /
/// [`compile_baseline_from_prefix`] — the shared prefix is optimized once
/// instead of once per sweep cell.
pub fn pipeline_prefix(mut module: Module, opts: BuildOptions) -> Module {
    Pipeline::new(opts.opt).run_to(&mut module, opts.ep);
    module
}

/// Like [`pipeline_prefix`], recording a per-pass span in `rec`.
pub fn pipeline_prefix_traced(
    mut module: Module,
    opts: BuildOptions,
    rec: &mut TraceRecorder,
) -> Module {
    Pipeline::new(opts.opt).run_to_traced(&mut module, opts.ep, rec);
    module
}

/// Completes compilation of a [`pipeline_prefix`] snapshot with
/// instrumentation per `config`. `opts` must match the options the prefix
/// was built with; the composition equals [`compile`] on the original
/// module.
pub fn compile_from_prefix(
    module: Module,
    config: &MiConfig,
    opts: BuildOptions,
) -> CompiledProgram {
    compile_from_prefix_with_summaries(module, config, opts, None)
}

/// Like [`compile_from_prefix`], but reusing precomputed interprocedural
/// summaries instead of letting the pass summarize the module itself.
///
/// The summaries must have been computed (by [`mir::analysis::ipo::summarize`])
/// over this exact prefix snapshot; `summarize` is deterministic, so a
/// cached result keyed by (source, build options) composes byte-identically
/// with the self-summarizing path. Pass `None` to self-summarize.
pub fn compile_from_prefix_with_summaries(
    mut module: Module,
    config: &MiConfig,
    opts: BuildOptions,
    summaries: Option<Arc<ModuleSummaries>>,
) -> CompiledProgram {
    let mut pass = MemInstrumentPass::new(config.clone()).with_summaries(summaries);
    Pipeline::new(opts.opt).resume_at(&mut module, opts.ep, Some(&mut pass));
    CompiledProgram {
        module,
        mechanism: Some(config.mechanism),
        stats: pass.stats,
        elisions: pass.elisions,
    }
}

/// Like [`compile_from_prefix`], recording a per-pass span (including the
/// instrumentation plugin) in `rec`.
pub fn compile_from_prefix_traced(
    mut module: Module,
    config: &MiConfig,
    opts: BuildOptions,
    rec: &mut TraceRecorder,
) -> CompiledProgram {
    let mut pass = MemInstrumentPass::new(config.clone());
    Pipeline::new(opts.opt).resume_at_traced(&mut module, opts.ep, Some(&mut pass), rec);
    CompiledProgram {
        module,
        mechanism: Some(config.mechanism),
        stats: pass.stats,
        elisions: pass.elisions,
    }
}

/// Completes compilation of a [`pipeline_prefix`] snapshot without
/// instrumentation; the composition equals [`compile_baseline`] on the
/// original module.
pub fn compile_baseline_from_prefix(mut module: Module, opts: BuildOptions) -> CompiledProgram {
    Pipeline::new(opts.opt).resume_at(&mut module, opts.ep, None);
    CompiledProgram { module, mechanism: None, stats: InstrStats::default(), elisions: Vec::new() }
}

/// Like [`compile_baseline_from_prefix`], recording a per-pass span in
/// `rec`.
pub fn compile_baseline_from_prefix_traced(
    mut module: Module,
    opts: BuildOptions,
    rec: &mut TraceRecorder,
) -> CompiledProgram {
    Pipeline::new(opts.opt).resume_at_traced(&mut module, opts.ep, None, rec);
    CompiledProgram { module, mechanism: None, stats: InstrStats::default(), elisions: Vec::new() }
}

impl CompiledProgram {
    /// Builds a VM with the matching runtime installed.
    ///
    /// # Errors
    ///
    /// Propagates VM load failures.
    pub fn make_vm(&self, vm_config: VmConfig) -> Result<Vm, Trap> {
        match self.mechanism {
            None => Vm::new(self.module.clone(), vm_config),
            Some(Mechanism::SoftBound) => {
                let mut vm = Vm::new(self.module.clone(), vm_config)?;
                install_runtime(&mut vm, Mechanism::SoftBound);
                Ok(vm)
            }
            Some(Mechanism::LowFat) => {
                let heap = Rc::new(RefCell::new(LowFatHeap::new()));
                let mut placer = LowFatPlacer { heap: heap.clone() };
                let mut vm = Vm::with_placer(self.module.clone(), vm_config, &mut placer)?;
                install_lowfat(&mut vm, heap);
                Ok(vm)
            }
            Some(Mechanism::RedZone) => {
                let shadow = Rc::new(RefCell::new(RzState::new()));
                let mut placer = RedZonePlacer { shadow: shadow.clone() };
                let mut vm = Vm::with_placer(self.module.clone(), vm_config, &mut placer)?;
                install_redzone(&mut vm, shadow);
                Ok(vm)
            }
        }
    }

    /// Like [`make_vm`](Self::make_vm) for a SoftBound build, additionally
    /// recording every executed `__sb_check` (pointer, width, and the
    /// bounds metadata it consulted) into `log` — the ground truth the
    /// property tests replay interprocedural elision proofs against.
    ///
    /// # Errors
    ///
    /// Propagates VM load failures.
    ///
    /// # Panics
    ///
    /// Panics if this program is not a SoftBound build.
    pub fn make_vm_sb_logged(&self, vm_config: VmConfig, log: SbAccessLog) -> Result<Vm, Trap> {
        assert_eq!(self.mechanism, Some(Mechanism::SoftBound), "access log is SoftBound-only");
        let mut vm = Vm::new(self.module.clone(), vm_config)?;
        install_softbound(&mut vm, Some(log));
        Ok(vm)
    }

    /// Builds a VM and runs `main` to completion.
    ///
    /// # Errors
    ///
    /// Returns the trap (including detected memory-safety violations).
    pub fn run_main(&self, vm_config: VmConfig) -> Result<ExecOutcome, Trap> {
        self.make_vm(vm_config)?.run("main", &[])
    }
}

/// One-call convenience: instrument, optimize, execute `main`.
///
/// # Errors
///
/// Returns the trap that ended execution, if any — in particular
/// [`Trap::MemSafetyViolation`] when the instrumentation catches an error.
pub fn compile_and_run(
    module: Module,
    config: &MiConfig,
    opts: BuildOptions,
) -> Result<ExecOutcome, Trap> {
    compile(module, config, opts).run_main(VmConfig::default())
}

impl crate::config::Instrument {
    /// Compiles `module` under this configuration (instrumented or
    /// baseline).
    pub fn compile(&self, module: Module) -> CompiledProgram {
        match self.mi_config() {
            Some(c) => compile(module, c, self.build_options()),
            None => compile_baseline(module, self.build_options()),
        }
    }

    /// Like [`Instrument::compile`](crate::Instrument::compile), recording
    /// a per-pass span in `rec`.
    pub fn compile_traced(&self, module: Module, rec: &mut TraceRecorder) -> CompiledProgram {
        match self.mi_config() {
            Some(c) => compile_traced(module, c, self.build_options(), rec),
            None => compile_baseline_traced(module, self.build_options(), rec),
        }
    }

    /// Completes compilation of a matching [`pipeline_prefix`] snapshot.
    pub fn compile_from_prefix(&self, prefix: Module) -> CompiledProgram {
        match self.mi_config() {
            Some(c) => compile_from_prefix(prefix, c, self.build_options()),
            None => compile_baseline_from_prefix(prefix, self.build_options()),
        }
    }

    /// Compiles and runs `main` to completion.
    ///
    /// # Errors
    ///
    /// Returns the trap that ended execution, if any — in particular
    /// [`Trap::MemSafetyViolation`] when the instrumentation catches an
    /// error.
    pub fn run(&self, module: Module) -> Result<ExecOutcome, Trap> {
        self.compile(module).run_main(self.vm_config())
    }
}

/// Places `lowfat`-attributed globals into their size-class regions.
struct LowFatPlacer {
    heap: Rc<RefCell<LowFatHeap>>,
}

impl GlobalPlacer for LowFatPlacer {
    fn place(&mut self, mem: &mut memvm::Memory, g: &Global) -> Option<u64> {
        if !g.attrs.lowfat {
            return None;
        }
        let alloc = self.heap.borrow_mut().alloc(g.size().max(1))?;
        mem.map(alloc.addr, alloc.class_size);
        Some(alloc.addr)
    }
}

fn violation(mechanism: &str, kind: &str, addr: u64, detail: String) -> Trap {
    Trap::MemSafetyViolation {
        mechanism: mechanism.into(),
        kind: kind.into(),
        addr,
        detail,
        func: None,
        line: None,
    }
}

/// One executed SoftBound dereference check, as captured by
/// [`CompiledProgram::make_vm_sb_logged`]. Records the metadata the check
/// consulted, so an interprocedural elision proof (`off` within
/// `size_min`) can be re-verified against the bounds the walker actually
/// enforced at that site.
#[derive(Clone, Debug)]
pub struct SbAccess {
    /// Function containing the check site (`None` when unattributed).
    pub func: Option<String>,
    /// Source line of the check site.
    pub line: Option<u32>,
    /// Pointer value checked.
    pub ptr: u64,
    /// Access width in bytes.
    pub width: u64,
    /// Object base per the pointer's metadata.
    pub base: u64,
    /// One past the object end per the metadata (`u64::MAX` = wide).
    pub bound: u64,
}

/// Shared log filled by the `__sb_check` helper when installed via
/// [`CompiledProgram::make_vm_sb_logged`].
pub type SbAccessLog = Rc<RefCell<Vec<SbAccess>>>;

/// Snapshot of the module's check-site table, captured when the runtime is
/// installed and shared (via `Rc`) by the check closures. Lets the runtime
/// attribute dynamic check executions to source lines (per-site profile)
/// and render ASan-style provenance in violation reports.
struct SiteTable {
    src_file: Option<String>,
    sites: Vec<CheckSite>,
}

impl SiteTable {
    fn of(vm: &Vm) -> Rc<SiteTable> {
        let m = vm.module();
        Rc::new(SiteTable { src_file: m.src_file.clone(), sites: m.check_sites.clone() })
    }

    /// Resolves a check call's trailing site-id operand. `None` for calls
    /// without the operand or with an id outside the table (hand-written
    /// IR) — those still check, they just go unattributed.
    fn site(&self, arg: Option<&RtVal>) -> Option<(usize, &CheckSite)> {
        let id = arg?.as_int() as usize;
        self.sites.get(id).map(|s| (id, s))
    }

    /// Records one execution of the site in the VM's per-site profile,
    /// with the same cost the closure charges into the checks bucket.
    fn record(&self, ctx: &mut memvm::HostCtx<'_>, arg: Option<&RtVal>, wide: bool, cost: u64) {
        if let Some((id, _)) = self.site(arg) {
            ctx.record_site(id, wide, cost);
        }
    }

    /// Builds a violation trap. With a resolved site the trap kind comes
    /// from the site ([`SiteKind`]) and the detail is prefixed with the
    /// ASan-style provenance sentence; otherwise `default_kind`/`detail`
    /// are used as-is.
    fn violation(
        &self,
        mechanism: &str,
        default_kind: &str,
        arg: Option<&RtVal>,
        addr: u64,
        detail: String,
    ) -> Trap {
        match self.site(arg) {
            Some((_, s)) => {
                let kind = match s.kind {
                    SiteKind::Deref => "deref-check",
                    SiteKind::Wrapper => "wrapper-check",
                    SiteKind::Invariant => "invariant",
                };
                let prov = s.describe_violation(self.src_file.as_deref());
                violation(mechanism, kind, addr, format!("{prov}; {detail}"))
            }
            None => violation(mechanism, default_kind, addr, detail),
        }
    }
}

/// Installs the runtime library for `mechanism` into `vm`.
///
/// For SoftBound this is complete. For Low-Fat Pointers this installs the
/// host functions and allocator replacement but *not* the global mirroring,
/// which requires constructing the VM via [`CompiledProgram::make_vm`] (the
/// placer must run at load time).
pub fn install_runtime(vm: &mut Vm, mechanism: Mechanism) {
    match mechanism {
        Mechanism::SoftBound => install_softbound(vm, None),
        Mechanism::LowFat => install_lowfat(vm, Rc::new(RefCell::new(LowFatHeap::new()))),
        Mechanism::RedZone => install_redzone(vm, Rc::new(RefCell::new(RzState::new()))),
    }
}

// ---------------------------------------------------------------------------
// Red-zone (ASan-style) runtime: shadow poison set + gapped allocators
// ---------------------------------------------------------------------------

/// Heap area for the red-zone allocator (distinct from the default heap so
/// baseline and red-zone addresses never collide in tests).
const RZ_HEAP_BASE: u64 = 0xE400_0000_0000;
/// Stack slab area for red-zone-guarded allocas.
const RZ_STACK_BASE: u64 = 0xF400_0000_0000;
/// Guarded-globals area (disjoint from the default global area, which
/// still hosts uninstrumented-library globals).
const RZ_GLOBAL_BASE: u64 = 0xD400_0000_0000;
/// Guard-zone size on each side of every object.
const RZ_SIZE: u64 = 16;

/// Shadow state: poisoned 8-byte granules plus the two bump cursors.
struct RzState {
    poisoned: std::collections::HashSet<u64>,
    heap_next: u64,
    stack_next: u64,
    global_next: u64,
}

impl RzState {
    fn new() -> RzState {
        RzState {
            poisoned: std::collections::HashSet::new(),
            heap_next: RZ_HEAP_BASE,
            stack_next: RZ_STACK_BASE,
            global_next: RZ_GLOBAL_BASE,
        }
    }

    fn poison(&mut self, addr: u64, len: u64) {
        for g in (addr >> 3)..((addr + len) >> 3) {
            self.poisoned.insert(g);
        }
    }

    fn unpoison(&mut self, addr: u64, len: u64) {
        let (lo, hi) = (addr >> 3, (addr + len) >> 3);
        // Bound the work by the poisoned set, not the range: a fresh
        // multi-GiB carve would otherwise walk hundreds of millions of
        // granules to clear the handful left by recycled stack slabs.
        if hi - lo > self.poisoned.len() as u64 {
            self.poisoned.retain(|&g| g < lo || g >= hi);
        } else {
            for g in lo..hi {
                self.poisoned.remove(&g);
            }
        }
    }

    /// Whether any granule overlapping `[addr, addr+width)` is poisoned.
    fn hits_poison(&self, addr: u64, width: u64) -> bool {
        let end = addr.saturating_add(width.max(1)).saturating_add(7);
        ((addr >> 3)..(end >> 3)).any(|g| self.poisoned.contains(&g))
    }

    /// Carves `[rz][object][rz]` out of a bump area; returns the object
    /// address. The caller maps the memory.
    fn carve(next: &mut u64, size: u64) -> (u64, u64) {
        let size_r = (size.max(1) + 15) & !15;
        let base = *next + RZ_SIZE;
        *next = base + size_r;
        (base, size_r)
    }

    fn alloc(&mut self, mem: &mut memvm::Memory, heap: bool, size: u64) -> u64 {
        let cursor = if heap { &mut self.heap_next } else { &mut self.stack_next };
        let (base, size_r) = Self::carve(cursor, size);
        mem.map(base - RZ_SIZE, size_r + 2 * RZ_SIZE);
        self.poison(base - RZ_SIZE, RZ_SIZE);
        self.poison(base + size_r, RZ_SIZE);
        self.unpoison(base, size_r);
        base
    }
}

/// Places globals into red-zone-guarded slots.
struct RedZonePlacer {
    shadow: Rc<RefCell<RzState>>,
}

impl GlobalPlacer for RedZonePlacer {
    fn place(&mut self, mem: &mut memvm::Memory, g: &Global) -> Option<u64> {
        if g.attrs.uninstrumented_lib {
            return None; // library globals get no guards, as with real ASan
        }
        let mut st = self.shadow.borrow_mut();
        let size = g.size().max(1);
        let size_r = (size + 15) & !15;
        let addr = st.global_next + RZ_SIZE;
        st.global_next = addr + size_r;
        mem.map(addr - RZ_SIZE, size_r + 2 * RZ_SIZE);
        st.poison(addr - RZ_SIZE, RZ_SIZE);
        st.poison(addr + size_r, RZ_SIZE);
        st.unpoison(addr, size_r);
        Some(addr)
    }
}

fn install_redzone(vm: &mut Vm, shadow: Rc<RefCell<RzState>>) {
    let table = SiteTable::of(vm);
    let reg = vm.registry_mut();
    {
        let shadow = shadow.clone();
        reg.register("malloc", move |ctx, args| {
            ctx.charge(CostCategory::Allocator, helper::RZ_MALLOC);
            Ok(RtVal::Int(shadow.borrow_mut().alloc(ctx.mem, true, args[0].as_int())))
        });
    }
    {
        let shadow = shadow.clone();
        reg.register("calloc", move |ctx, args| {
            let size = args[0].as_int().saturating_mul(args[1].as_int());
            ctx.charge(CostCategory::Allocator, helper::RZ_MALLOC + size / 8);
            Ok(RtVal::Int(shadow.borrow_mut().alloc(ctx.mem, true, size)))
        });
    }
    {
        let shadow = shadow.clone();
        reg.register("free", move |ctx, args| {
            ctx.charge(CostCategory::Allocator, helper::RZ_FREE);
            // Quarantine-style: poison the first granules of the freed
            // object so (some) accesses through dangling pointers trap.
            shadow.borrow_mut().poison(args[0].as_int(), RZ_SIZE);
            Ok(RtVal::Int(0))
        });
    }
    {
        let shadow = shadow.clone();
        reg.register("__rz_stack_alloc", move |ctx, args| {
            ctx.charge(CostCategory::Allocator, helper::RZ_STACK_ALLOC);
            Ok(RtVal::Int(shadow.borrow_mut().alloc(ctx.mem, false, args[0].as_int())))
        });
    }
    {
        let shadow = shadow.clone();
        reg.register("__rz_stack_save", move |ctx, _args| {
            ctx.charge(CostCategory::Allocator, helper::RZ_STACK_SAVERESTORE);
            Ok(RtVal::Int(shadow.borrow().stack_next))
        });
    }
    {
        let shadow = shadow.clone();
        reg.register("__rz_stack_restore", move |ctx, args| {
            ctx.charge(CostCategory::Allocator, helper::RZ_STACK_SAVERESTORE);
            let mut st = shadow.borrow_mut();
            let watermark = args[0].as_int();
            let cur = st.stack_next;
            if cur > watermark {
                // The zones tile: `[watermark, watermark+RZ)` is the
                // caller's last object's *trailing* zone (doubling as the
                // dead frame's leading zone), so unpoisoning must start
                // one zone in or a call would erase the caller's guard.
                st.unpoison(watermark + RZ_SIZE, cur - watermark);
                st.stack_next = watermark;
            }
            Ok(RtVal::Int(0))
        });
    }
    {
        let shadow = shadow.clone();
        reg.register("__rz_check", move |ctx, args| {
            ctx.charge(CostCategory::Checks, helper::RZ_CHECK);
            ctx.stats.checks_executed += 1;
            let (ptr, width) = (args[0].as_int(), args[1].as_int());
            table.record(ctx, args.get(2), false, helper::RZ_CHECK);
            if shadow.borrow().hits_poison(ptr, width) {
                return Err(table.violation(
                    "redzone",
                    "deref-check",
                    args.get(2),
                    ptr,
                    format!("access of {width} B touches a poisoned red zone"),
                ));
            }
            Ok(RtVal::Int(0))
        });
    }
}

fn install_softbound(vm: &mut Vm, log: Option<SbAccessLog>) {
    let table = SiteTable::of(vm);
    let trie = Rc::new(RefCell::new(MetadataTrie::new()));
    let ss = Rc::new(RefCell::new(ShadowStack::new()));
    let reg = vm.registry_mut();

    reg.register("__sb_check", move |ctx, args| {
        ctx.charge(CostCategory::Checks, helper::SB_CHECK);
        ctx.stats.checks_executed += 1;
        let (ptr, width) = (args[0].as_int(), args[1].as_int());
        let b = Bounds { base: args[2].as_int(), bound: args[3].as_int() };
        let wide = b.bound == u64::MAX;
        table.record(ctx, args.get(4), wide, helper::SB_CHECK);
        if let Some(log) = &log {
            let site = table.site(args.get(4)).map(|(_, s)| s);
            log.borrow_mut().push(SbAccess {
                func: site.map(|s| s.func.clone()),
                line: site.and_then(|s| s.line),
                ptr,
                width,
                base: b.base,
                bound: b.bound,
            });
        }
        if wide {
            ctx.stats.checks_wide += 1;
            return Ok(RtVal::Int(0));
        }
        if !b.allows(ptr, width) {
            return Err(table.violation(
                "softbound",
                "deref-check",
                args.get(4),
                ptr,
                format!("access of {width} B outside [0x{:x}, 0x{:x})", b.base, b.bound),
            ));
        }
        Ok(RtVal::Int(0))
    });
    {
        let trie = trie.clone();
        reg.register("__sb_trie_get_base", move |ctx, args| {
            ctx.charge(CostCategory::Metadata, helper::SB_TRIE_GET);
            ctx.stats.metadata_loads += 1;
            Ok(RtVal::Int(trie.borrow().get(args[0].as_int()).base))
        });
    }
    {
        let trie = trie.clone();
        reg.register("__sb_trie_get_bound", move |ctx, args| {
            ctx.charge(CostCategory::Metadata, helper::SB_TRIE_GET);
            ctx.stats.metadata_loads += 1;
            Ok(RtVal::Int(trie.borrow().get(args[0].as_int()).bound))
        });
    }
    {
        let trie = trie.clone();
        reg.register("__sb_trie_set", move |ctx, args| {
            ctx.charge(CostCategory::Metadata, helper::SB_TRIE_SET);
            ctx.stats.metadata_stores += 1;
            trie.borrow_mut()
                .set(args[0].as_int(), Bounds { base: args[1].as_int(), bound: args[2].as_int() });
            Ok(RtVal::Int(0))
        });
    }
    {
        let trie = trie.clone();
        reg.register("__sb_memcpy_meta", move |ctx, args| {
            let (dst, src, len) = (args[0].as_int(), args[1].as_int(), args[2].as_int());
            ctx.charge(CostCategory::Metadata, 4 + len / 8);
            ctx.stats.metadata_stores += 1;
            trie.borrow_mut().copy_range(dst, src, len);
            Ok(RtVal::Int(0))
        });
    }
    {
        let trie = trie.clone();
        reg.register("__sb_memset_meta", move |ctx, args| {
            let (dst, len) = (args[0].as_int(), args[1].as_int());
            ctx.charge(CostCategory::Metadata, 4 + len / 8);
            ctx.stats.metadata_stores += 1;
            let mut t = trie.borrow_mut();
            for i in 0..len / 8 {
                t.set(dst + i * 8, Bounds::NULL);
            }
            Ok(RtVal::Int(0))
        });
    }
    {
        let ss = ss.clone();
        reg.register("__sb_ss_push_frame", move |ctx, args| {
            ctx.charge(CostCategory::Metadata, helper::SB_SS_FRAME);
            ss.borrow_mut().push_frame(args[0].as_int() as usize);
            Ok(RtVal::Int(0))
        });
    }
    {
        let ss = ss.clone();
        reg.register("__sb_ss_pop_frame", move |ctx, _args| {
            ctx.charge(CostCategory::Metadata, helper::SB_SS_FRAME);
            ss.borrow_mut().pop_frame();
            Ok(RtVal::Int(0))
        });
    }
    {
        let ss = ss.clone();
        reg.register("__sb_ss_set_arg", move |ctx, args| {
            ctx.charge(CostCategory::Metadata, helper::SB_SS_SET);
            ctx.stats.metadata_stores += 1;
            ss.borrow_mut().set_arg(
                args[0].as_int() as usize,
                Bounds { base: args[1].as_int(), bound: args[2].as_int() },
            );
            Ok(RtVal::Int(0))
        });
    }
    {
        let ss = ss.clone();
        reg.register("__sb_ss_get_arg_base", move |ctx, args| {
            ctx.charge(CostCategory::Metadata, helper::SB_SS_GET);
            ctx.stats.metadata_loads += 1;
            Ok(RtVal::Int(ss.borrow().arg(args[0].as_int() as usize).base))
        });
    }
    {
        let ss = ss.clone();
        reg.register("__sb_ss_get_arg_bound", move |ctx, args| {
            ctx.charge(CostCategory::Metadata, helper::SB_SS_GET);
            ctx.stats.metadata_loads += 1;
            Ok(RtVal::Int(ss.borrow().arg(args[0].as_int() as usize).bound))
        });
    }
    {
        let ss = ss.clone();
        reg.register("__sb_ss_set_ret", move |ctx, args| {
            ctx.charge(CostCategory::Metadata, helper::SB_SS_SET);
            ctx.stats.metadata_stores += 1;
            ss.borrow_mut().set_ret(Bounds { base: args[0].as_int(), bound: args[1].as_int() });
            Ok(RtVal::Int(0))
        });
    }
    {
        let ss = ss.clone();
        reg.register("__sb_ss_get_ret_base", move |ctx, _args| {
            ctx.charge(CostCategory::Metadata, helper::SB_SS_GET);
            ctx.stats.metadata_loads += 1;
            Ok(RtVal::Int(ss.borrow().ret().base))
        });
    }
    {
        reg.register("__sb_ss_get_ret_bound", move |ctx, _args| {
            ctx.charge(CostCategory::Metadata, helper::SB_SS_GET);
            ctx.stats.metadata_loads += 1;
            Ok(RtVal::Int(ss.borrow().ret().bound))
        });
    }
}

/// Fallback stack area for allocations the low-fat stack cannot serve.
const LF_FALLBACK_STACK_BASE: u64 = 0xF800_0000_0000;

fn install_lowfat(vm: &mut Vm, heap: Rc<RefCell<LowFatHeap>>) {
    let table = SiteTable::of(vm);
    let stack = Rc::new(RefCell::new(LowFatStack::new()));
    let heap_fallback = Rc::new(RefCell::new(BumpAllocator::new(memvm::layout::HEAP_BASE)));
    let stack_fallback = Rc::new(RefCell::new(BumpAllocator::new(LF_FALLBACK_STACK_BASE)));
    let reg = vm.registry_mut();

    // Replace malloc/calloc wholesale: every heap allocation in the program
    // (even from uninstrumented code) becomes low-fat (§4.3).
    {
        let heap = heap.clone();
        let fb = heap_fallback.clone();
        reg.register("malloc", move |ctx, args| {
            ctx.charge(CostCategory::Allocator, helper::LF_MALLOC);
            let size = args[0].as_int();
            match heap.borrow_mut().alloc(size) {
                Some(a) => {
                    ctx.mem.map(a.addr, a.class_size);
                    Ok(RtVal::Int(a.addr))
                }
                None => Ok(RtVal::Int(fb.borrow_mut().alloc(ctx.mem, size))),
            }
        });
    }
    {
        let heap = heap.clone();
        let fb = heap_fallback;
        reg.register("calloc", move |ctx, args| {
            let size = args[0].as_int().saturating_mul(args[1].as_int());
            ctx.charge(CostCategory::Allocator, helper::LF_MALLOC + size / 8);
            match heap.borrow_mut().alloc(size) {
                Some(a) => {
                    ctx.mem.map(a.addr, a.class_size);
                    Ok(RtVal::Int(a.addr))
                }
                None => Ok(RtVal::Int(fb.borrow_mut().alloc(ctx.mem, size))),
            }
        });
    }
    {
        let heap = heap.clone();
        reg.register("free", move |ctx, args| {
            ctx.charge(CostCategory::Allocator, helper::LF_FREE);
            let ptr = args[0].as_int();
            if is_low_fat(ptr) && ptr == base_of(ptr) {
                heap.borrow_mut().free(ptr);
            }
            Ok(RtVal::Int(0))
        });
    }
    {
        let stack = stack.clone();
        let fb = stack_fallback;
        reg.register("__lf_stack_alloc", move |ctx, args| {
            ctx.charge(CostCategory::Allocator, helper::LF_STACK_ALLOC);
            let size = args[0].as_int();
            match stack.borrow_mut().alloc(size) {
                Some(a) => {
                    ctx.mem.map(a.addr, a.class_size);
                    Ok(RtVal::Int(a.addr))
                }
                None => Ok(RtVal::Int(fb.borrow_mut().alloc(ctx.mem, size))),
            }
        });
    }
    {
        let stack = stack.clone();
        reg.register("__lf_stack_save", move |ctx, _args| {
            ctx.charge(CostCategory::Allocator, helper::LF_STACK_SAVERESTORE);
            Ok(RtVal::Int(stack.borrow().save().as_raw()))
        });
    }
    {
        let stack = stack.clone();
        reg.register("__lf_stack_restore", move |ctx, args| {
            ctx.charge(CostCategory::Allocator, helper::LF_STACK_SAVERESTORE);
            stack.borrow_mut().restore(StackToken::from_raw(args[0].as_int()));
            Ok(RtVal::Int(0))
        });
    }
    reg.register("__lf_base", |ctx, args| {
        ctx.charge(CostCategory::Metadata, helper::LF_BASE);
        ctx.stats.metadata_loads += 1;
        Ok(RtVal::Int(base_of(args[0].as_int())))
    });
    {
        let table = table.clone();
        reg.register("__lf_check", move |ctx, args| {
            ctx.charge(CostCategory::Checks, helper::LF_CHECK);
            ctx.stats.checks_executed += 1;
            let (ptr, width, base) = (args[0].as_int(), args[1].as_int(), args[2].as_int());
            let wide = !is_low_fat(base);
            table.record(ctx, args.get(3), wide, helper::LF_CHECK);
            if wide {
                // Wide bounds: the pointer is outside every low-fat region
                // (legacy stack, uninstrumented-library globals, oversized
                // allocations) — nothing can be validated (§4.6, Table 2).
                ctx.stats.checks_wide += 1;
                return Ok(RtVal::Int(0));
            }
            let size = alloc_size(region_of(base));
            // Figure 5: (ptr - base) > alloc_size - width, with underflow on
            // ptr < base making the check fail as intended.
            if width > size || ptr.wrapping_sub(base) > size - width {
                return Err(table.violation(
                    "lowfat",
                    "deref-check",
                    args.get(3),
                    ptr,
                    format!("access of {width} B outside object at 0x{base:x} (size {size})"),
                ));
            }
            Ok(RtVal::Int(0))
        });
    }
    reg.register("__lf_invariant", move |ctx, args| {
        ctx.charge(CostCategory::Checks, helper::LF_INVARIANT);
        ctx.stats.invariant_checks_executed += 1;
        let (ptr, base) = (args[0].as_int(), args[1].as_int());
        // Invariant checks never count into `checks_wide` (Table 2 tracks
        // dereference checks only), so the site records wide = false to
        // keep profile totals reconciling exactly with the aggregates.
        table.record(ctx, args.get(2), false, helper::LF_INVARIANT);
        if !is_low_fat(base) {
            return Ok(RtVal::Int(0));
        }
        let size = alloc_size(region_of(base));
        if ptr.wrapping_sub(base) >= size {
            // An out-of-bounds pointer escapes: Low-Fat must reject it to
            // keep its invariant — even if the program would have brought
            // it back in bounds before dereferencing (§4.2).
            return Err(table.violation(
                "lowfat",
                "invariant",
                args.get(2),
                ptr,
                format!("out-of-bounds pointer escapes object at 0x{base:x} (size {size})"),
            ));
        }
        Ok(RtVal::Int(0))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptConfig;

    fn parse(src: &str) -> Module {
        mir::parser::parse_module(src).unwrap()
    }

    fn run_all(src: &str) -> [Result<ExecOutcome, Trap>; 3] {
        let m = parse(src);
        let base =
            compile_baseline(m.clone(), BuildOptions::default()).run_main(VmConfig::default());
        let sb = compile_and_run(
            m.clone(),
            &MiConfig::new(Mechanism::SoftBound),
            BuildOptions::default(),
        );
        let lf = compile_and_run(m, &MiConfig::new(Mechanism::LowFat), BuildOptions::default());
        [base, sb, lf]
    }

    #[test]
    fn traced_compilation_matches_untraced() {
        let m = parse(CORRECT_PROGRAM);
        for mech in [Mechanism::SoftBound, Mechanism::LowFat, Mechanism::RedZone] {
            let cfg = MiConfig::new(mech);
            let plain = compile(m.clone(), &cfg, BuildOptions::default());
            let mut rec = TraceRecorder::new();
            let traced = compile_traced(m.clone(), &cfg, BuildOptions::default(), &mut rec);
            assert_eq!(
                mir::printer::print_module(&plain.module),
                mir::printer::print_module(&traced.module),
                "{mech:?}"
            );
            assert!(rec.spans().iter().any(|s| s.stage.starts_with("plugin@")));
        }
        let plain = compile_baseline(m.clone(), BuildOptions::default());
        let mut rec = TraceRecorder::new();
        let traced = compile_baseline_traced(m, BuildOptions::default(), &mut rec);
        assert_eq!(
            mir::printer::print_module(&plain.module),
            mir::printer::print_module(&traced.module)
        );
        assert!(!rec.spans().is_empty());
        assert!(rec.spans().iter().all(|s| !s.stage.starts_with("plugin@")));
    }

    const CORRECT_PROGRAM: &str = r#"
        hostdecl ptr @malloc(i64)
        hostdecl void @print_i64(i64)
        define i64 @sum(ptr %arr, i64 %n) {
        entry:
          br header
        header:
          %i = phi i64, [entry: i64 0], [body: %next]
          %acc = phi i64, [entry: i64 0], [body: %acc2]
          %c = icmp slt i64, %i, %n
          condbr %c, body, exit
        body:
          %q = gep i64, %arr, [%i]
          %v = load i64, %q
          %acc2 = add i64, %acc, %v
          %next = add i64, %i, i64 1
          br header
        exit:
          ret %acc
        }
        define i64 @main() {
        entry:
          %p = call ptr @malloc(i64 80)
          br header
        header:
          %i = phi i64, [entry: i64 0], [body: %next]
          %c = icmp slt i64, %i, i64 10
          condbr %c, body, exit
        body:
          %q = gep i64, %p, [%i]
          store i64, %i, %q
          %next = add i64, %i, i64 1
          br header
        exit:
          %s = call i64 @sum(%p, i64 10)
          call void @print_i64(%s)
          ret %s
        }
    "#;

    #[test]
    fn correct_program_runs_identically_under_all_configs() {
        let [base, sb, lf] = run_all(CORRECT_PROGRAM);
        let base = base.unwrap();
        let sb = sb.unwrap();
        let lf = lf.unwrap();
        assert_eq!(base.ret.unwrap().as_int(), 45);
        assert_eq!(sb.ret.unwrap().as_int(), 45);
        assert_eq!(lf.ret.unwrap().as_int(), 45);
        assert_eq!(base.output, sb.output);
        assert_eq!(base.output, lf.output);
        // Interprocedural summaries prove every access in bounds here (the
        // 80-byte malloc reaches both loops' pointers with known offsets),
        // so the default configuration executes no dereference checks at
        // all — SoftBound's residual cost can drop to the baseline's.
        assert!(sb.stats.cost_total >= base.stats.cost_total);
        assert!(lf.stats.cost_total >= base.stats.cost_total);
        assert_eq!(sb.stats.checks_executed, 0);
        assert_eq!(lf.stats.checks_executed, 0);
        // Disabling IPO brings every check back, with identical output and
        // a strictly higher cost than the baseline.
        let m = parse(CORRECT_PROGRAM);
        for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
            let cfg = MiConfig { opt: OptConfig::no_ipo(), ..MiConfig::new(mech) };
            let out = compile_and_run(m.clone(), &cfg, BuildOptions::default()).unwrap();
            assert_eq!(out.ret.unwrap().as_int(), 45, "{mech:?}");
            assert_eq!(out.output, base.output, "{mech:?}");
            assert!(out.stats.checks_executed > 0, "{mech:?}");
            assert_eq!(out.stats.checks_wide, 0, "{mech:?}");
            assert!(out.stats.cost_total > base.stats.cost_total, "{mech:?}");
        }
    }

    const HEAP_OVERFLOW: &str = r#"
        hostdecl ptr @malloc(i64)
        define i64 @main() {
        entry:
          %p = call ptr @malloc(i64 80)
          br header
        header:
          %i = phi i64, [entry: i64 0], [body: %next]
          %c = icmp sle i64, %i, i64 16
          condbr %c, body, exit
        body:
          %q = gep i64, %p, [%i]
          store i64, %i, %q
          %next = add i64, %i, i64 1
          br header
        exit:
          ret i64 0
        }
    "#;

    #[test]
    fn heap_overflow_caught_by_both() {
        let [base, sb, lf] = run_all(HEAP_OVERFLOW);
        // The baseline overflows into the mapped page: silent corruption.
        assert!(base.is_ok(), "baseline must run through: {base:?}");
        assert!(
            matches!(sb, Err(Trap::MemSafetyViolation { ref mechanism, .. }) if mechanism == "softbound"),
            "{sb:?}"
        );
        // 80 B pads to a 128 B low-fat object: the write at offset 128
        // leaves the object and is caught.
        assert!(
            matches!(lf, Err(Trap::MemSafetyViolation { ref mechanism, .. }) if mechanism == "lowfat"),
            "{lf:?}"
        );
    }

    #[test]
    fn lowfat_misses_overflow_into_padding_softbound_catches() {
        // One element past an 80-byte allocation: offset 80..88 is inside
        // the 128-byte padded object — §4's distinguishing limitation.
        let src = r#"
            hostdecl ptr @malloc(i64)
            define i64 @main() {
            entry:
              %p = call ptr @malloc(i64 80)
              %q = gep i64, %p, [i64 10]
              store i64, i64 1, %q
              ret i64 0
            }
        "#;
        let m = parse(src);
        let sb = compile_and_run(
            m.clone(),
            &MiConfig::new(Mechanism::SoftBound),
            BuildOptions::default(),
        );
        let lf = compile_and_run(m, &MiConfig::new(Mechanism::LowFat), BuildOptions::default());
        assert!(sb.is_err(), "SoftBound uses exact bounds: {sb:?}");
        assert!(lf.is_ok(), "Low-Fat cannot see into its padding: {lf:?}");
    }

    #[test]
    fn stack_overflow_caught() {
        let src = r#"
            define i64 @main() {
            entry:
              %a = alloca [4 x i64], i64 1
              %q = gep i64, %a, [i64 9]
              store i64, i64 1, %q
              ret i64 0
            }
        "#;
        let m = parse(src);
        let sb = compile_and_run(
            m.clone(),
            &MiConfig::new(Mechanism::SoftBound),
            BuildOptions::default(),
        );
        assert!(sb.is_err(), "{sb:?}");
        let lf = compile_and_run(m, &MiConfig::new(Mechanism::LowFat), BuildOptions::default());
        assert!(lf.is_err(), "{lf:?}");
    }

    #[test]
    fn global_overflow_caught() {
        let src = r#"
            global @g : [4 x i32] = zero
            global @h : [4 x i32] = zero
            define i64 @main() {
            entry:
              %q = gep i32, @g, [i64 40]
              store i32, i32 1, %q
              ret i64 0
            }
        "#;
        let m = parse(src);
        let sb = compile_and_run(
            m.clone(),
            &MiConfig::new(Mechanism::SoftBound),
            BuildOptions::default(),
        );
        assert!(sb.is_err(), "{sb:?}");
        let lf = compile_and_run(m, &MiConfig::new(Mechanism::LowFat), BuildOptions::default());
        assert!(lf.is_err(), "{lf:?}");
    }

    #[test]
    fn oversized_allocation_gives_lowfat_wide_bounds() {
        // The 429mcf situation: > 1 GiB allocation falls back to the
        // standard allocator; its accesses cannot be checked by Low-Fat.
        let src = r#"
            hostdecl ptr @malloc(i64)
            define i64 @main() {
            entry:
              %p = call ptr @malloc(i64 2147483648)
              %q = gep i64, %p, [i64 1000]
              store i64, i64 1, %q
              %v = load i64, %q
              ret %v
            }
        "#;
        let m = parse(src);
        // IPO would prove this constant-offset access in bounds and elide
        // the check entirely; disable it so the wide-bounds fallback the
        // test demonstrates stays observable.
        let cfg = MiConfig { opt: OptConfig::no_ipo(), ..MiConfig::new(Mechanism::LowFat) };
        let prog = compile(m, &cfg, BuildOptions::default());
        let out = prog.run_main(VmConfig::default()).unwrap();
        assert_eq!(out.ret.unwrap().as_int(), 1);
        assert!(out.stats.checks_wide > 0);
        assert_eq!(out.stats.checks_wide, out.stats.checks_executed);
    }

    #[test]
    fn size_unknown_extern_gives_softbound_wide_bounds() {
        // The 164gzip situation (§4.3): the "real" size is visible to the
        // VM loader but hidden from the instrumentation.
        let src = r#"
            global @ext_arr : [64 x i32] = zero external size_unknown
            define i64 @main() {
            entry:
              %q = gep i32, @ext_arr, [i64 5]
              store i32, i32 7, %q
              %v = load i32, %q
              %w = zext %v, i32 to i64
              ret %w
            }
        "#;
        let m = parse(src);
        let prog =
            compile(m.clone(), &MiConfig::new(Mechanism::SoftBound), BuildOptions::default());
        let out = prog.run_main(VmConfig::default()).unwrap();
        assert_eq!(out.ret.unwrap().as_int(), 7);
        assert!(out.stats.checks_wide > 0);
        // Low-Fat does not need size info: it mirrors the global and checks.
        let prog = compile(m, &MiConfig::new(Mechanism::LowFat), BuildOptions::default());
        let out = prog.run_main(VmConfig::default()).unwrap();
        assert_eq!(out.stats.checks_wide, 0);
        assert!(out.stats.checks_executed > 0);
    }

    #[test]
    fn lowfat_rejects_escaping_oob_pointer_softbound_tolerates() {
        // §4.2: p + 100 escapes to a callee which brings it back in bounds
        // before dereferencing. SoftBound accepts; Low-Fat reports.
        // `back` calls another module function so the inliner leaves it
        // alone — the escape must survive to the call boundary, as it would
        // for a function in another translation unit.
        let src = r#"
            hostdecl ptr @malloc(i64)
            define i64 @note(i64 %x) {
            entry:
              ret %x
            }
            define i64 @back(ptr %p) {
            entry:
              %q = gep i64, %p, [i64 -100]
              %v = load i64, %q
              %w = call i64 @note(%v)
              ret %w
            }
            define i64 @main() {
            entry:
              %p = call ptr @malloc(i64 64)
              store i64, i64 42, %p
              %oob = gep i64, %p, [i64 100]
              %v = call i64 @back(%oob)
              ret %v
            }
        "#;
        let m = parse(src);
        let sb = compile_and_run(
            m.clone(),
            &MiConfig::new(Mechanism::SoftBound),
            BuildOptions::default(),
        );
        assert_eq!(sb.unwrap().ret.unwrap().as_int(), 42);
        let lf = compile_and_run(m, &MiConfig::new(Mechanism::LowFat), BuildOptions::default());
        assert!(
            matches!(lf, Err(Trap::MemSafetyViolation { ref kind, .. }) if kind == "invariant"),
            "{lf:?}"
        );
    }

    #[test]
    fn all_extension_points_execute_correctly() {
        for ep in ExtensionPoint::ALL {
            for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
                let m = parse(CORRECT_PROGRAM);
                let out = compile_and_run(
                    m,
                    &MiConfig::new(mech),
                    BuildOptions { opt: OptLevel::O3, ep },
                )
                .unwrap_or_else(|e| panic!("{mech:?} at {}: {e}", ep.name()));
                assert_eq!(out.ret.unwrap().as_int(), 45);
            }
        }
    }

    #[test]
    fn prefix_composition_matches_direct_compilation() {
        let m = parse(CORRECT_PROGRAM);
        for ep in ExtensionPoint::ALL {
            for opt in [OptLevel::O0, OptLevel::O3] {
                let opts = BuildOptions { opt, ep };
                let prefix = pipeline_prefix(m.clone(), opts);
                let base_direct = compile_baseline(m.clone(), opts);
                let base_split = compile_baseline_from_prefix(prefix.clone(), opts);
                assert_eq!(
                    mir::printer::print_module(&base_direct.module),
                    mir::printer::print_module(&base_split.module),
                    "baseline {opt:?}@{}",
                    ep.name()
                );
                for mech in [Mechanism::SoftBound, Mechanism::LowFat, Mechanism::RedZone] {
                    let cfg = MiConfig::new(mech);
                    let direct = compile(m.clone(), &cfg, opts);
                    let split = compile_from_prefix(prefix.clone(), &cfg, opts);
                    assert_eq!(
                        mir::printer::print_module(&direct.module),
                        mir::printer::print_module(&split.module),
                        "{mech:?} {opt:?}@{}",
                        ep.name()
                    );
                    assert_eq!(direct.stats, split.stats, "{mech:?} {opt:?}@{}", ep.name());
                }
            }
        }
    }

    #[test]
    fn geninvariants_cheaper_than_full() {
        let m = parse(CORRECT_PROGRAM);
        // Compare against full instrumentation without IPO: on this fully
        // provable program interprocedural elision makes full mode as cheap
        // as invariants-only, which is exactly the point of the analysis
        // but not of this test.
        let full_cfg = MiConfig { opt: OptConfig::no_ipo(), ..MiConfig::new(Mechanism::SoftBound) };
        let full = compile_and_run(m.clone(), &full_cfg, BuildOptions::default()).unwrap();
        let inv = compile_and_run(
            m,
            &MiConfig::invariants_only(Mechanism::SoftBound),
            BuildOptions::default(),
        )
        .unwrap();
        assert!(inv.stats.cost_total < full.stats.cost_total);
        assert_eq!(inv.stats.checks_executed, 0);
    }
}
