//! Static instrumentation statistics (what the pass inserted).
//!
//! Dynamic counterparts (checks *executed*, wide-bounds checks — Table 2)
//! live in [`memvm::VmStats`].

/// Counters describing one instrumentation run over a module.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InstrStats {
    /// Dereference check targets discovered.
    pub checks_discovered: u64,
    /// Check targets removed by the dominance optimization (§5.3).
    pub checks_eliminated: u64,
    /// Dereference checks actually placed.
    pub checks_placed: u64,
    /// Invariant targets placed (Low-Fat escapes; SoftBound metadata
    /// propagation points at stores/calls/returns).
    pub invariants_placed: u64,
    /// Metadata load operations placed (trie/shadow-stack reads, low-fat
    /// base recoveries).
    pub metadata_loads_placed: u64,
    /// Metadata store operations placed (trie writes, shadow-stack writes).
    pub metadata_stores_placed: u64,
    /// Allocas replaced by low-fat stack allocations.
    pub allocas_replaced: u64,
    /// Globals mirrored into low-fat regions.
    pub globals_mirrored: u64,
    /// Functions instrumented.
    pub functions_instrumented: u64,
    /// Functions skipped (uninstrumented external libraries, runtime).
    pub functions_skipped: u64,
    /// Witnesses narrowed to struct members (Appendix-B experiment).
    pub checks_narrowed: u64,
}

impl InstrStats {
    /// Fraction of discovered checks removed by the optimization, in
    /// percent (the paper reports 8–50 % depending on benchmark).
    pub fn eliminated_percent(&self) -> f64 {
        if self.checks_discovered == 0 {
            0.0
        } else {
            100.0 * self.checks_eliminated as f64 / self.checks_discovered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eliminated_percent() {
        let mut s = InstrStats::default();
        assert_eq!(s.eliminated_percent(), 0.0);
        s.checks_discovered = 200;
        s.checks_eliminated = 50;
        assert!((s.eliminated_percent() - 25.0).abs() < 1e-12);
    }
}
