//! Static instrumentation statistics (what the pass inserted).
//!
//! Dynamic counterparts (checks *executed*, wide-bounds checks — Table 2)
//! live in [`memvm::VmStats`].

/// Counters describing one instrumentation run over a module.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InstrStats {
    /// Dereference check targets discovered.
    pub checks_discovered: u64,
    /// Check targets removed by the dominance optimization (§5.3).
    pub checks_eliminated: u64,
    /// Loop-invariant checks hoisted into a loop preheader (§5.3).
    pub checks_hoisted: u64,
    /// Monotone induction-variable checks widened into a single preheader
    /// range check covering every accessed byte (§5.3).
    pub checks_widened: u64,
    /// Dereference checks actually placed.
    pub checks_placed: u64,
    /// Invariant targets placed (Low-Fat escapes; SoftBound metadata
    /// propagation points at stores/calls/returns).
    pub invariants_placed: u64,
    /// Metadata load operations placed (trie/shadow-stack reads, low-fat
    /// base recoveries).
    pub metadata_loads_placed: u64,
    /// Metadata store operations placed (trie writes, shadow-stack writes).
    pub metadata_stores_placed: u64,
    /// Allocas replaced by low-fat stack allocations.
    pub allocas_replaced: u64,
    /// Globals mirrored into low-fat regions.
    pub globals_mirrored: u64,
    /// Functions instrumented.
    pub functions_instrumented: u64,
    /// Functions skipped (uninstrumented external libraries, runtime).
    pub functions_skipped: u64,
    /// Witnesses narrowed to struct members (Appendix-B experiment).
    pub checks_narrowed: u64,
    /// Checks elided by interprocedural summary proof (`mir::analysis::ipo`).
    pub checks_elided_ipo: u64,
    /// Function summaries computed (or loaded from cache) for this module.
    pub summaries_computed: u64,
}

impl InstrStats {
    /// Fraction of discovered checks removed by the optimization, in
    /// percent (the paper reports 8–50 % depending on benchmark).
    pub fn eliminated_percent(&self) -> f64 {
        if self.checks_discovered == 0 {
            0.0
        } else {
            100.0 * self.checks_eliminated as f64 / self.checks_discovered as f64
        }
    }
}

impl std::ops::AddAssign<&InstrStats> for InstrStats {
    fn add_assign(&mut self, rhs: &InstrStats) {
        self.checks_discovered += rhs.checks_discovered;
        self.checks_eliminated += rhs.checks_eliminated;
        self.checks_hoisted += rhs.checks_hoisted;
        self.checks_widened += rhs.checks_widened;
        self.checks_placed += rhs.checks_placed;
        self.invariants_placed += rhs.invariants_placed;
        self.metadata_loads_placed += rhs.metadata_loads_placed;
        self.metadata_stores_placed += rhs.metadata_stores_placed;
        self.allocas_replaced += rhs.allocas_replaced;
        self.globals_mirrored += rhs.globals_mirrored;
        self.functions_instrumented += rhs.functions_instrumented;
        self.functions_skipped += rhs.functions_skipped;
        self.checks_narrowed += rhs.checks_narrowed;
        self.checks_elided_ipo += rhs.checks_elided_ipo;
        self.summaries_computed += rhs.summaries_computed;
    }
}

impl std::ops::AddAssign for InstrStats {
    fn add_assign(&mut self, rhs: InstrStats) {
        *self += &rhs;
    }
}

impl std::iter::Sum for InstrStats {
    fn sum<I: Iterator<Item = InstrStats>>(iter: I) -> InstrStats {
        let mut total = InstrStats::default();
        for s in iter {
            total += &s;
        }
        total
    }
}

impl<'a> std::iter::Sum<&'a InstrStats> for InstrStats {
    fn sum<I: Iterator<Item = &'a InstrStats>>(iter: I) -> InstrStats {
        let mut total = InstrStats::default();
        for s in iter {
            total += s;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eliminated_percent() {
        let mut s = InstrStats::default();
        assert_eq!(s.eliminated_percent(), 0.0);
        s.checks_discovered = 200;
        s.checks_eliminated = 50;
        assert!((s.eliminated_percent() - 25.0).abs() < 1e-12);
    }

    fn sample(n: u64) -> InstrStats {
        InstrStats {
            checks_discovered: n,
            checks_eliminated: n + 1,
            checks_placed: n + 2,
            invariants_placed: n + 3,
            metadata_loads_placed: n + 4,
            metadata_stores_placed: n + 5,
            allocas_replaced: n + 6,
            globals_mirrored: n + 7,
            functions_instrumented: n + 8,
            functions_skipped: n + 9,
            checks_narrowed: n + 10,
            checks_hoisted: n + 11,
            checks_widened: n + 12,
            checks_elided_ipo: n + 13,
            summaries_computed: n + 14,
        }
    }

    #[test]
    fn add_assign_sums_every_field() {
        let mut a = sample(10);
        a += sample(100);
        // Every field is the sum of the two samples; spot-check ends and
        // compare wholesale against a directly-constructed expectation.
        assert_eq!(a.checks_discovered, 110);
        assert_eq!(a.checks_narrowed, 130);
        let mut expect = sample(0);
        expect += &sample(110);
        let mut b = InstrStats::default();
        for f in [10u64, 100] {
            b += sample(f);
        }
        assert_eq!(a, b);
        assert_eq!(a, expect);
    }

    #[test]
    fn sum_over_iterators_matches_fold() {
        let parts = vec![sample(1), sample(2), sample(3)];
        let owned: InstrStats = parts.clone().into_iter().sum();
        let borrowed: InstrStats = parts.iter().sum();
        assert_eq!(owned, borrowed);
        assert_eq!(owned.checks_discovered, 6);
        assert_eq!(owned.functions_skipped, (1 + 9) + (2 + 9) + (3 + 9));
        assert_eq!(std::iter::empty::<InstrStats>().sum::<InstrStats>(), InstrStats::default());
    }
}
