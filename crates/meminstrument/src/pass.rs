//! The MemInstrument module pass: drives discovery → optimization →
//! witness resolution → lowering for every instrumentable function.
//!
//! Implements [`mir::passes::ModulePass`], so it can be inserted into the
//! [`mir::Pipeline`] at any extension point (Figure 8 of the paper):
//!
//! ```
//! use meminstrument::{MemInstrumentPass, MiConfig, Mechanism};
//! use mir::{Pipeline, ExtensionPoint};
//!
//! let src = "define i64 @main() {\nentry:\n  ret i64 0\n}\n";
//! let mut module = mir::parser::parse_module(src).unwrap();
//! let mut pass = MemInstrumentPass::new(MiConfig::new(Mechanism::LowFat));
//! Pipeline::default().run_at(&mut module, ExtensionPoint::VectorizerStart, &mut pass);
//! assert!(mir::verifier::verify_module(&module).is_ok());
//! ```

use std::sync::Arc;

use mir::analysis::ipo::{self, FactEnv, ModuleSummaries};
use mir::instr::InstrKind;
use mir::module::Module;
use mir::passes::ModulePass;
use mir::types::Type;
use mir::Function;

use crate::config::{Mechanism, MiConfig, MiMode};
use crate::hostdefs;
use crate::itarget::{discover, EscapeKind, Targets};
use crate::mechanism::{
    lowfat::LowFatMech, redzone::RedZoneMech, softbound::SoftBoundMech, MechanismLowering, PtrArg,
};
use crate::opt::{
    elide_proven_checks, eliminate_dominated_checks, optimize_loop_checks, ElisionRecord,
};
use crate::stats::InstrStats;
use crate::witness::{resolve_witness, InstrumentCx, ModuleInfo};

/// The instrumentation pass.
#[derive(Debug)]
pub struct MemInstrumentPass {
    /// Configuration (mechanism, mode, flags).
    pub config: MiConfig,
    /// Statistics accumulated over the run.
    pub stats: InstrStats,
    /// Audit trail of interprocedurally elided checks.
    pub elisions: Vec<ElisionRecord>,
    /// Precomputed whole-program summaries (normally computed on the
    /// frontend module and cached by source hash). `None` means the pass
    /// summarizes the module it runs on.
    summaries: Option<Arc<ModuleSummaries>>,
    ran: bool,
}

impl MemInstrumentPass {
    /// Creates a pass for `config`.
    pub fn new(config: MiConfig) -> MemInstrumentPass {
        MemInstrumentPass {
            config,
            stats: InstrStats::default(),
            elisions: Vec::new(),
            summaries: None,
            ran: false,
        }
    }

    /// Supplies precomputed pointer summaries (from the frontend module
    /// or the artifact cache) instead of summarizing at pass time.
    /// Summaries key by function name and parameter index only, so a
    /// frontend summary stays valid at any extension point — pipeline
    /// passes rewrite bodies, never signatures, and inlining only
    /// removes call sites (a join over more sites is weaker, hence
    /// sound).
    pub fn with_summaries(mut self, summaries: Option<Arc<ModuleSummaries>>) -> MemInstrumentPass {
        self.summaries = summaries;
        self
    }
}

impl ModulePass for MemInstrumentPass {
    fn name(&self) -> &'static str {
        "meminstrument"
    }

    fn run(&mut self, m: &mut Module) -> bool {
        assert!(!self.ran, "MemInstrumentPass must run exactly once per module");
        self.ran = true;

        match self.config.mechanism {
            Mechanism::SoftBound => hostdefs::declare_softbound(m),
            Mechanism::RedZone => hostdefs::declare_redzone(m),
            Mechanism::LowFat => {
                hostdefs::declare_lowfat(m);
                // Globals extension: mirror every global we control into a
                // low-fat region ("add section marker, mirror, replace").
                for g in &mut m.globals {
                    if !g.attrs.uninstrumented_lib {
                        g.attrs.lowfat = true;
                        self.stats.globals_mirrored += 1;
                    }
                }
            }
        }

        // Interprocedural context: whole-program summaries (supplied or
        // computed here) plus the module-local fact environment, which
        // must always reflect *this* module's global ids.
        let ipo_cx = if self.config.uses_ipo() {
            let summaries = self.summaries.clone().unwrap_or_else(|| Arc::new(ipo::summarize(m)));
            self.stats.summaries_computed += summaries.len() as u64;
            Some((summaries, FactEnv::collect(m)))
        } else {
            None
        };

        let minfo = ModuleInfo::collect(m, &self.config);
        let mut sites = std::mem::take(&mut m.check_sites);
        for i in 0..m.functions.len() {
            let skip = {
                let f = &m.functions[i];
                f.is_declaration || f.attrs.uninstrumented || f.attrs.no_instrument
            };
            if skip {
                self.stats.functions_skipped += 1;
                continue;
            }
            let mut f = std::mem::replace(
                &mut m.functions[i],
                Function::declaration("__mi_placeholder", vec![], Type::Void),
            );
            let ipo_ref = ipo_cx.as_ref().map(|(s, env)| (s.as_ref(), env));
            match self.config.mechanism {
                Mechanism::SoftBound => {
                    let mut mech = SoftBoundMech;
                    instrument_function(
                        &mut f,
                        &minfo,
                        &mut self.stats,
                        &mut sites,
                        &mut mech,
                        ipo_ref,
                        &mut self.elisions,
                    );
                }
                Mechanism::LowFat => {
                    let mut mech = LowFatMech;
                    instrument_function(
                        &mut f,
                        &minfo,
                        &mut self.stats,
                        &mut sites,
                        &mut mech,
                        ipo_ref,
                        &mut self.elisions,
                    );
                }
                Mechanism::RedZone => {
                    let mut mech = RedZoneMech;
                    instrument_function(
                        &mut f,
                        &minfo,
                        &mut self.stats,
                        &mut sites,
                        &mut mech,
                        ipo_ref,
                        &mut self.elisions,
                    );
                }
            }
            m.functions[i] = f;
            self.stats.functions_instrumented += 1;
        }
        m.check_sites = sites;
        true
    }
}

fn instrument_function(
    f: &mut Function,
    minfo: &ModuleInfo,
    stats: &mut InstrStats,
    sites: &mut Vec<mir::srcloc::CheckSite>,
    mech: &mut dyn MechanismLowering,
    ipo_cx: Option<(&ModuleSummaries, &FactEnv)>,
    elisions: &mut Vec<ElisionRecord>,
) {
    let config = &minfo.config;
    let mut cx = InstrumentCx::new(f, minfo, stats, sites);

    mech.prepare_function(&mut cx);

    let mut targets: Targets = discover(cx.func);
    cx.stats.checks_discovered += targets.checks.len() as u64;
    if config.opt.dominance {
        cx.stats.checks_eliminated += eliminate_dominated_checks(cx.func, &mut targets);
    }
    // Loop-aware check optimization (§5.3): hoist invariant checks into the
    // preheader and widen monotone induction-variable checks into a single
    // range check. Only meaningful when checks will actually be placed.
    if config.mode == MiMode::Full && config.opt.any_loop_opts() {
        let out = optimize_loop_checks(cx.func, &mut targets, &config.opt, config.mechanism);
        cx.stats.checks_hoisted += out.hoisted;
        cx.stats.checks_widened += out.widened;
        cx.stats.checks_eliminated += out.merged;
    }
    // Interprocedural elision runs after the loop optimizations so the
    // widened preheader range checks are themselves candidates.
    if let Some((summaries, env)) = ipo_cx {
        cx.stats.checks_elided_ipo +=
            elide_proven_checks(cx.func, &mut targets, summaries, env, config.mechanism, elisions);
    }

    // Phase A: resolve (and materialize) every witness that will be needed,
    // so that protocol code placed in phase C can be ordered after witness
    // reads.
    for c in &targets.checks {
        resolve_witness(&mut cx, mech, &c.ptr);
    }
    for inv in &targets.invariants {
        match &inv.kind {
            EscapeKind::StoredToMemory { value, .. }
            | EscapeKind::Returned { value, .. }
            | EscapeKind::CastToInt { value } => {
                resolve_witness(&mut cx, mech, value);
            }
            EscapeKind::Call => {
                let iid = inv.instr.expect("call target has instr");
                let (args, returns_ptr) = call_shape(&cx, iid);
                for (_, op) in &args {
                    resolve_witness(&mut cx, mech, op);
                }
                if returns_ptr {
                    let res = cx.result_of(iid);
                    resolve_witness(&mut cx, mech, &res);
                }
            }
            EscapeKind::MemCpy => {
                if config.sb_wrapper_checks {
                    let iid = inv.instr.expect("memcpy instr");
                    if let InstrKind::MemCpy { dst, src, .. } =
                        cx.func.instrs[iid.index()].kind.clone()
                    {
                        resolve_witness(&mut cx, mech, &dst);
                        resolve_witness(&mut cx, mech, &src);
                    }
                }
            }
            EscapeKind::MemSet => {}
        }
    }

    // Phase B: dereference checks (full mode only).
    if config.mode == MiMode::Full {
        for c in &targets.checks {
            let w = resolve_witness(&mut cx, mech, &c.ptr);
            mech.emit_check(&mut cx, c, &w);
        }
    }

    // Phase C: escapes / metadata propagation (all modes).
    for inv in &targets.invariants {
        match &inv.kind {
            EscapeKind::StoredToMemory { value, addr } => {
                let w = resolve_witness(&mut cx, mech, value);
                mech.emit_store_escape(&mut cx, inv.instr.expect("store instr"), value, addr, &w);
            }
            EscapeKind::Returned { value, block } => {
                let w = resolve_witness(&mut cx, mech, value);
                mech.emit_return_escape(&mut cx, *block, value, &w);
            }
            EscapeKind::CastToInt { value } => {
                let w = resolve_witness(&mut cx, mech, value);
                mech.emit_cast_escape(&mut cx, inv.instr.expect("cast instr"), value, &w);
            }
            EscapeKind::Call => {
                let iid = inv.instr.expect("call instr");
                let (args, returns_ptr) = call_shape(&cx, iid);
                let callee = match &cx.func.instrs[iid.index()].kind {
                    InstrKind::Call { callee, .. } => Some(callee.clone()),
                    _ => None,
                };
                let ptr_args: Vec<PtrArg> = args
                    .iter()
                    .map(|(idx, op)| PtrArg {
                        arg_index: *idx,
                        value: op.clone(),
                        witness: resolve_witness(&mut cx, mech, op),
                    })
                    .collect();
                mech.emit_call_escape(&mut cx, iid, callee.as_deref(), &ptr_args, returns_ptr);
            }
            EscapeKind::MemCpy => {
                let iid = inv.instr.expect("memcpy instr");
                if config.sb_wrapper_checks {
                    if let InstrKind::MemCpy { dst, src, .. } =
                        cx.func.instrs[iid.index()].kind.clone()
                    {
                        let wd = resolve_witness(&mut cx, mech, &dst);
                        let ws = resolve_witness(&mut cx, mech, &src);
                        mech.emit_memcpy(&mut cx, iid, Some((&wd, &ws)));
                        continue;
                    }
                }
                mech.emit_memcpy(&mut cx, iid, None);
            }
            EscapeKind::MemSet => {
                mech.emit_memset(&mut cx, inv.instr.expect("memset instr"));
            }
        }
    }
}

/// Pointer-typed arguments (by index) and whether the call returns a
/// pointer.
fn call_shape(
    cx: &InstrumentCx<'_>,
    iid: mir::ids::InstrId,
) -> (Vec<(usize, mir::instr::Operand)>, bool) {
    let instr = &cx.func.instrs[iid.index()];
    let args = match &instr.kind {
        InstrKind::Call { args, .. } | InstrKind::CallIndirect { args, .. } => args.clone(),
        other => unreachable!("call target is {other:?}"),
    };
    let ptr_args = args
        .into_iter()
        .enumerate()
        .filter(|(_, op)| cx.func.operand_type(op) == Type::Ptr)
        .collect();
    let returns_ptr = instr.result.map(|r| *cx.func.value_type(r) == Type::Ptr).unwrap_or(false);
    (ptr_args, returns_ptr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptConfig;
    use mir::verifier::verify_module;

    fn count_calls(m: &Module, name: &str) -> usize {
        m.functions
            .iter()
            .flat_map(|f| {
                f.blocks.iter().flat_map(|b| b.instrs.iter().map(|&i| &f.instrs[i.index()].kind))
            })
            .filter(|k| matches!(k, InstrKind::Call { callee, .. } if callee == name))
            .count()
    }

    fn instrument(src: &str, config: MiConfig) -> (Module, InstrStats) {
        let mut m = mir::parser::parse_module(src).unwrap();
        let mut pass = MemInstrumentPass::new(config);
        pass.run(&mut m);
        verify_module(&m)
            .unwrap_or_else(|e| panic!("verify failed: {e}\n{}", mir::printer::print_module(&m)));
        (m, pass.stats)
    }

    const HEAP_LOOP: &str = r#"
        hostdecl ptr @malloc(i64)
        define i64 @main() {
        entry:
          %p = call ptr @malloc(i64 80)
          br header
        header:
          %i = phi i64, [entry: i64 0], [body: %next]
          %c = icmp slt i64, %i, i64 10
          condbr %c, body, exit
        body:
          %q = gep i64, %p, [%i]
          store i64, %i, %q
          %next = add i64, %i, i64 1
          br header
        exit:
          %last = gep i64, %p, [i64 9]
          %v = load i64, %last
          ret %v
        }
    "#;

    #[test]
    fn softbound_inserts_checks_and_verifies() {
        // Without interprocedural elision: the widened preheader check and
        // the exit load check are both placed.
        let config = MiConfig { opt: OptConfig::no_ipo(), ..MiConfig::new(Mechanism::SoftBound) };
        let (m, stats) = instrument(HEAP_LOOP, config);
        assert_eq!(count_calls(&m, "__sb_check"), 2);
        assert_eq!(stats.checks_placed, 2);
        assert_eq!(stats.checks_discovered, 2);
        // The in-loop store check is widened into a single preheader check.
        assert_eq!(stats.checks_widened, 1);
        assert_eq!(stats.checks_elided_ipo, 0);
        // No metadata traffic needed: the pointer never escapes.
        assert_eq!(count_calls(&m, "__sb_trie_set"), 0);
    }

    #[test]
    fn softbound_ipo_elides_proven_heap_accesses() {
        // With summaries, malloc(80) proves both the widened 0..80 range
        // check and the exit access of bytes 72..80: nothing remains.
        let (m, stats) = instrument(HEAP_LOOP, MiConfig::new(Mechanism::SoftBound));
        assert_eq!(count_calls(&m, "__sb_check"), 0);
        assert_eq!(stats.checks_placed, 0);
        assert_eq!(stats.checks_elided_ipo, 2);
        assert_eq!(stats.checks_widened, 1);
        assert!(stats.summaries_computed >= 1);
    }

    #[test]
    fn lowfat_inserts_checks_and_verifies() {
        let config = MiConfig { opt: OptConfig::no_ipo(), ..MiConfig::new(Mechanism::LowFat) };
        let (m, stats) = instrument(HEAP_LOOP, config);
        assert_eq!(count_calls(&m, "__lf_check"), 2);
        assert_eq!(stats.checks_placed, 2);
        assert_eq!(stats.checks_widened, 1);
        assert_eq!(count_calls(&m, "__lf_invariant"), 0);
    }

    #[test]
    fn redzone_ipo_respects_free() {
        // HEAP_LOOP never frees: RedZone elides like the others.
        let (m, stats) = instrument(HEAP_LOOP, MiConfig::new(Mechanism::RedZone));
        assert_eq!(count_calls(&m, "__rz_check"), 0);
        assert_eq!(stats.checks_elided_ipo, 2);
        // The same program with a trailing free keeps every heap check.
        let with_free = HEAP_LOOP.replace(
            "%v = load i64, %last\n          ret %v",
            "%v = load i64, %last\n          call void @free(%p)\n          ret %v",
        );
        let with_free = format!("hostdecl void @free(ptr)\n{with_free}");
        let (m, stats) = instrument(&with_free, MiConfig::new(Mechanism::RedZone));
        assert!(count_calls(&m, "__rz_check") >= 2);
        assert_eq!(stats.checks_elided_ipo, 0);
        // SoftBound's guarantee is spatial-only: still elides.
        let (_, stats) = instrument(&with_free, MiConfig::new(Mechanism::SoftBound));
        assert_eq!(stats.checks_elided_ipo, 2);
    }

    #[test]
    fn geninvariants_mode_places_no_checks() {
        let (m, stats) = instrument(HEAP_LOOP, MiConfig::invariants_only(Mechanism::SoftBound));
        assert_eq!(count_calls(&m, "__sb_check"), 0);
        assert_eq!(stats.checks_placed, 0);
        assert!(stats.checks_discovered > 0);
    }

    const PTR_STORE: &str = r#"
        hostdecl ptr @malloc(i64)
        define i64 @main() {
        entry:
          %slot = call ptr @malloc(i64 8)
          %obj = call ptr @malloc(i64 32)
          store ptr, %obj, %slot
          %loaded = load ptr, %slot
          %v = load i64, %loaded
          ret %v
        }
    "#;

    #[test]
    fn softbound_tracks_pointer_stores_in_trie() {
        let (m, stats) = instrument(PTR_STORE, MiConfig::new(Mechanism::SoftBound));
        assert_eq!(count_calls(&m, "__sb_trie_set"), 1);
        assert_eq!(count_calls(&m, "__sb_trie_get_base"), 1);
        assert_eq!(count_calls(&m, "__sb_trie_get_bound"), 1);
        assert!(stats.metadata_stores_placed >= 1);
    }

    #[test]
    fn lowfat_checks_invariant_at_pointer_store() {
        let (m, _) = instrument(PTR_STORE, MiConfig::new(Mechanism::LowFat));
        assert_eq!(count_calls(&m, "__lf_invariant"), 1);
        // The loaded pointer's base is recomputed, not loaded from a trie.
        assert_eq!(count_calls(&m, "__lf_base"), 1);
    }

    const CALL_PROTOCOL: &str = r#"
        define i64 @callee(ptr %p, i64 %n) {
        entry:
          %q = gep i64, %p, [%n]
          %v = load i64, %q
          ret %v
        }
        define i64 @main() {
        entry:
          %a = alloca [8 x i64], i64 1
          %v = call i64 @callee(%a, i64 3)
          ret %v
        }
    "#;

    #[test]
    fn softbound_shadow_stack_protocol() {
        let (m, _) = instrument(CALL_PROTOCOL, MiConfig::new(Mechanism::SoftBound));
        assert_eq!(count_calls(&m, "__sb_ss_push_frame"), 1);
        assert_eq!(count_calls(&m, "__sb_ss_set_arg"), 1);
        assert_eq!(count_calls(&m, "__sb_ss_pop_frame"), 1);
        // Callee reads its pointer arg's bounds.
        assert_eq!(count_calls(&m, "__sb_ss_get_arg_base"), 1);
        assert_eq!(count_calls(&m, "__sb_ss_get_arg_bound"), 1);
    }

    #[test]
    fn lowfat_replaces_allocas_and_brackets_frame() {
        let (m, stats) = instrument(CALL_PROTOCOL, MiConfig::new(Mechanism::LowFat));
        assert_eq!(stats.allocas_replaced, 1);
        assert_eq!(count_calls(&m, "__lf_stack_alloc"), 1);
        assert_eq!(count_calls(&m, "__lf_stack_save"), 1);
        assert_eq!(count_calls(&m, "__lf_stack_restore"), 1);
        // The call argument escape is invariant-checked.
        assert_eq!(count_calls(&m, "__lf_invariant"), 1);
    }

    #[test]
    fn dominance_opt_removes_redundant_checks() {
        let src = r#"
            define i64 @main(ptr %p) {
            entry:
              %a = load i64, %p
              %b = load i64, %p
              %s = add i64, %a, %b
              ret %s
            }
        "#;
        let (_, stats) = instrument(src, MiConfig::new(Mechanism::SoftBound));
        assert_eq!(stats.checks_discovered, 2);
        assert_eq!(stats.checks_eliminated, 1);
        assert_eq!(stats.checks_placed, 1);
        let (_, stats) = instrument(src, MiConfig::unoptimized(Mechanism::SoftBound));
        assert_eq!(stats.checks_eliminated, 0);
        assert_eq!(stats.checks_placed, 2);
    }

    #[test]
    fn uninstrumented_functions_skipped() {
        let src = r#"
            define i64 @libfn(ptr %p) uninstrumented {
            entry:
              %v = load i64, %p
              ret %v
            }
            define i64 @main(ptr %p) {
            entry:
              %v = call i64 @libfn(%p)
              ret %v
            }
        "#;
        let (m, stats) = instrument(src, MiConfig::new(Mechanism::SoftBound));
        assert_eq!(stats.functions_skipped, 1);
        assert_eq!(stats.functions_instrumented, 1);
        // libfn's load is unchecked.
        assert_eq!(count_calls(&m, "__sb_check"), 0);
        // ... and main does NOT maintain the protocol for it.
        assert_eq!(count_calls(&m, "__sb_ss_push_frame"), 0);
    }

    #[test]
    fn lowfat_marks_globals() {
        let src = r#"
            global @mine : [4 x i64] = zero
            global @libg : [4 x i64] = zero uninstrumented_lib
            define i64 @main() {
            entry:
              ret i64 0
            }
        "#;
        let (m, stats) = instrument(src, MiConfig::new(Mechanism::LowFat));
        assert_eq!(stats.globals_mirrored, 1);
        assert!(m.global_by_name("mine").unwrap().1.attrs.lowfat);
        assert!(!m.global_by_name("libg").unwrap().1.attrs.lowfat);
    }

    #[test]
    fn memcpy_metadata_for_softbound_only() {
        let src = r#"
            hostdecl ptr @malloc(i64)
            define i64 @main() {
            entry:
              %a = call ptr @malloc(i64 32)
              %b = call ptr @malloc(i64 32)
              memcpy %b, %a, i64 32
              ret i64 0
            }
        "#;
        let (m, _) = instrument(src, MiConfig::new(Mechanism::SoftBound));
        assert_eq!(count_calls(&m, "__sb_memcpy_meta"), 1);
        let (m, _) = instrument(src, MiConfig::new(Mechanism::LowFat));
        assert_eq!(count_calls(&m, "__sb_memcpy_meta"), 0);
    }

    #[test]
    fn phi_pointers_get_companion_witnesses() {
        let src = r#"
            hostdecl ptr @malloc(i64)
            define i64 @main(i1 %c) {
            entry:
              %a = call ptr @malloc(i64 16)
              %b = call ptr @malloc(i64 32)
              condbr %c, t, e
            t:
              br join
            e:
              br join
            join:
              %p = phi ptr, [t: %a], [e: %b]
              %v = load i64, %p
              ret %v
            }
        "#;
        // no_ipo: the phi of two mallocs would otherwise prove its load
        // in bounds and elide the very check whose witness this exercises.
        let config = MiConfig { opt: OptConfig::no_ipo(), ..MiConfig::new(Mechanism::SoftBound) };
        let (m, _) = instrument(src, config);
        // The join block has the original phi plus two companions.
        let (_, f) = m.function_by_name("main").unwrap();
        let join = &f.blocks[3];
        let phis = join
            .instrs
            .iter()
            .filter(|&&i| matches!(f.instrs[i.index()].kind, InstrKind::Phi { .. }))
            .count();
        assert_eq!(phis, 3);
        let config = MiConfig { opt: OptConfig::no_ipo(), ..MiConfig::new(Mechanism::LowFat) };
        let (m, _) = instrument(src, config);
        let (_, f) = m.function_by_name("main").unwrap();
        let join = &f.blocks[3];
        let phis = join
            .instrs
            .iter()
            .filter(|&&i| matches!(f.instrs[i.index()].kind, InstrKind::Phi { .. }))
            .count();
        assert_eq!(phis, 2);
    }

    #[test]
    fn ptrtoint_escape_checked_by_lowfat_only() {
        let src = r#"
            hostdecl ptr @malloc(i64)
            define i64 @main() {
            entry:
              %p = call ptr @malloc(i64 16)
              %i = ptrtoint %p, ptr to i64
              ret %i
            }
        "#;
        let (m, _) = instrument(src, MiConfig::new(Mechanism::LowFat));
        assert_eq!(count_calls(&m, "__lf_invariant"), 1);
        let (m, _) = instrument(src, MiConfig::new(Mechanism::SoftBound));
        assert_eq!(count_calls(&m, "__sb_check"), 0);
    }

    #[test]
    #[should_panic(expected = "exactly once")]
    fn double_run_panics() {
        let mut m =
            mir::parser::parse_module("define i64 @main() {\nentry:\n  ret i64 0\n}\n").unwrap();
        let mut pass = MemInstrumentPass::new(MiConfig::new(Mechanism::LowFat));
        pass.run(&mut m);
        pass.run(&mut m);
    }
}
