//! The runtime-library interface: names, signatures, and effect contracts
//! of every host function the instrumentation may call.
//!
//! The instrumentation pass *declares* these in the module; the runtime
//! environment ([`crate::runtime`]) *implements* them in the VM. Keeping
//! the list in one place guarantees the two sides agree.
//!
//! Effect contracts drive the optimizer (cf. [`mir::module::Effect`]):
//! metadata reads are `ReadOnly` (dead ones vanish — the §5.4 effect),
//! low-fat base recovery is `Pure` (hoistable, CSE-able — "only recalculate
//! the base pointer"), and everything that can abort or write is
//! `Effectful` and therefore an optimization barrier (§5.5).
//!
//! Every function that can *report a violation* ([`SB_CHECK`],
//! [`LF_CHECK`], [`LF_INVARIANT`], [`RZ_CHECK`]) takes a trailing `i64`
//! check-site id indexing [`mir::module::Module::check_sites`]; the runtime
//! uses it for per-site profiles and source-attributed trap reports.

use mir::module::{Effect, HostDecl, Module};
use mir::types::Type;

/// SoftBound dereference check.
pub const SB_CHECK: &str = "__sb_check";
/// SoftBound trie lookup, base component.
pub const SB_TRIE_GET_BASE: &str = "__sb_trie_get_base";
/// SoftBound trie lookup, bound component.
pub const SB_TRIE_GET_BOUND: &str = "__sb_trie_get_bound";
/// SoftBound trie update.
pub const SB_TRIE_SET: &str = "__sb_trie_set";
/// SoftBound metadata copy for `memcpy` (Figure 6's `copy_metadata`).
pub const SB_MEMCPY_META: &str = "__sb_memcpy_meta";
/// SoftBound metadata invalidation for `memset` over pointer slots.
pub const SB_MEMSET_META: &str = "__sb_memset_meta";
/// Shadow stack: push a frame with N argument slots.
pub const SB_SS_PUSH: &str = "__sb_ss_push_frame";
/// Shadow stack: pop the top frame.
pub const SB_SS_POP: &str = "__sb_ss_pop_frame";
/// Shadow stack: write argument bounds (index, base, bound).
pub const SB_SS_SET_ARG: &str = "__sb_ss_set_arg";
/// Shadow stack: read argument base.
pub const SB_SS_GET_ARG_BASE: &str = "__sb_ss_get_arg_base";
/// Shadow stack: read argument bound.
pub const SB_SS_GET_ARG_BOUND: &str = "__sb_ss_get_arg_bound";
/// Shadow stack: write return-value bounds.
pub const SB_SS_SET_RET: &str = "__sb_ss_set_ret";
/// Shadow stack: read return-value base.
pub const SB_SS_GET_RET_BASE: &str = "__sb_ss_get_ret_base";
/// Shadow stack: read return-value bound.
pub const SB_SS_GET_RET_BOUND: &str = "__sb_ss_get_ret_bound";

/// Low-Fat dereference check (Figure 5).
pub const LF_CHECK: &str = "__lf_check";
/// Low-Fat escape invariant check (§3.3).
pub const LF_INVARIANT: &str = "__lf_invariant";
/// Low-Fat base recovery from a pointer value.
pub const LF_BASE: &str = "__lf_base";
/// Low-Fat stack allocation.
pub const LF_STACK_ALLOC: &str = "__lf_stack_alloc";
/// Low-Fat stack watermark save.
pub const LF_STACK_SAVE: &str = "__lf_stack_save";
/// Low-Fat stack watermark restore.
pub const LF_STACK_RESTORE: &str = "__lf_stack_restore";

/// Declares the SoftBound runtime interface in `m`.
pub fn declare_softbound(m: &mut Module) {
    let p = Type::Ptr;
    let i = Type::I64;
    let v = Type::Void;
    let d = |params: Vec<Type>, ret: Type, effect: Effect| HostDecl { params, ret, effect };
    m.declare_host(
        SB_CHECK,
        d(
            vec![p.clone(), i.clone(), p.clone(), p.clone(), i.clone()],
            v.clone(),
            Effect::Effectful,
        ),
    );
    m.declare_host(SB_TRIE_GET_BASE, d(vec![p.clone()], p.clone(), Effect::ReadOnly));
    m.declare_host(SB_TRIE_GET_BOUND, d(vec![p.clone()], p.clone(), Effect::ReadOnly));
    m.declare_host(
        SB_TRIE_SET,
        d(vec![p.clone(), p.clone(), p.clone()], v.clone(), Effect::Effectful),
    );
    m.declare_host(
        SB_MEMCPY_META,
        d(vec![p.clone(), p.clone(), i.clone()], v.clone(), Effect::Effectful),
    );
    m.declare_host(SB_MEMSET_META, d(vec![p.clone(), i.clone()], v.clone(), Effect::Effectful));
    m.declare_host(SB_SS_PUSH, d(vec![i.clone()], v.clone(), Effect::Effectful));
    m.declare_host(SB_SS_POP, d(vec![], v.clone(), Effect::Effectful));
    m.declare_host(
        SB_SS_SET_ARG,
        d(vec![i.clone(), p.clone(), p.clone()], v.clone(), Effect::Effectful),
    );
    m.declare_host(SB_SS_GET_ARG_BASE, d(vec![i.clone()], p.clone(), Effect::ReadOnly));
    m.declare_host(SB_SS_GET_ARG_BOUND, d(vec![i.clone()], p.clone(), Effect::ReadOnly));
    m.declare_host(SB_SS_SET_RET, d(vec![p.clone(), p.clone()], v, Effect::Effectful));
    m.declare_host(SB_SS_GET_RET_BASE, d(vec![], p.clone(), Effect::ReadOnly));
    m.declare_host(SB_SS_GET_RET_BOUND, d(vec![], p, Effect::ReadOnly));
}

/// Red-zone (ASan-style) dereference check against shadow memory.
pub const RZ_CHECK: &str = "__rz_check";
/// Red-zone stack allocation (object + poisoned guard zones).
pub const RZ_STACK_ALLOC: &str = "__rz_stack_alloc";
/// Red-zone stack watermark save.
pub const RZ_STACK_SAVE: &str = "__rz_stack_save";
/// Red-zone stack watermark restore.
pub const RZ_STACK_RESTORE: &str = "__rz_stack_restore";

/// Declares the red-zone runtime interface in `m`.
pub fn declare_redzone(m: &mut Module) {
    let p = Type::Ptr;
    let i = Type::I64;
    let v = Type::Void;
    let d = |params: Vec<Type>, ret: Type, effect: Effect| HostDecl { params, ret, effect };
    m.declare_host(
        RZ_CHECK,
        d(vec![p.clone(), i.clone(), i.clone()], v.clone(), Effect::Effectful),
    );
    m.declare_host(RZ_STACK_ALLOC, d(vec![i.clone()], p, Effect::Effectful));
    m.declare_host(RZ_STACK_SAVE, d(vec![], i.clone(), Effect::Effectful));
    m.declare_host(RZ_STACK_RESTORE, d(vec![i], v, Effect::Effectful));
}

/// Declares the Low-Fat runtime interface in `m`.
pub fn declare_lowfat(m: &mut Module) {
    let p = Type::Ptr;
    let i = Type::I64;
    let v = Type::Void;
    let d = |params: Vec<Type>, ret: Type, effect: Effect| HostDecl { params, ret, effect };
    m.declare_host(
        LF_CHECK,
        d(vec![p.clone(), i.clone(), p.clone(), i.clone()], v.clone(), Effect::Effectful),
    );
    m.declare_host(
        LF_INVARIANT,
        d(vec![p.clone(), p.clone(), i.clone()], v.clone(), Effect::Effectful),
    );
    m.declare_host(LF_BASE, d(vec![p.clone()], p.clone(), Effect::Pure));
    m.declare_host(LF_STACK_ALLOC, d(vec![i.clone()], p, Effect::Effectful));
    m.declare_host(LF_STACK_SAVE, d(vec![], i.clone(), Effect::Effectful));
    m.declare_host(LF_STACK_RESTORE, d(vec![i], v, Effect::Effectful));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declarations_have_paper_consistent_effects() {
        let mut m = Module::new("t");
        declare_softbound(&mut m);
        declare_lowfat(&mut m);
        // Metadata reads are removable when unused (§5.4).
        assert_eq!(m.host_decls[SB_TRIE_GET_BASE].effect, Effect::ReadOnly);
        assert_eq!(m.host_decls[SB_SS_GET_RET_BASE].effect, Effect::ReadOnly);
        // Base recovery is pure arithmetic (§5.2).
        assert_eq!(m.host_decls[LF_BASE].effect, Effect::Pure);
        // Checks may abort: optimization barriers (§5.5).
        assert_eq!(m.host_decls[SB_CHECK].effect, Effect::Effectful);
        assert_eq!(m.host_decls[LF_CHECK].effect, Effect::Effectful);
        assert_eq!(m.host_decls[LF_INVARIANT].effect, Effect::Effectful);
    }

    #[test]
    fn declaration_is_idempotent() {
        let mut m = Module::new("t");
        declare_softbound(&mut m);
        declare_softbound(&mut m);
        declare_lowfat(&mut m);
        declare_lowfat(&mut m);
        declare_redzone(&mut m);
        declare_redzone(&mut m);
        assert_eq!(m.host_decls.len(), 14 + 6 + 4);
    }
}
