//! Instrumentation configuration, mirroring the artifact's command-line
//! flags (§A.6 of the paper).

/// Which memory-safety mechanism to apply (`-mi-config=`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Mechanism {
    /// SoftBound: disjoint metadata (trie + shadow stack).
    SoftBound,
    /// Low-Fat Pointers: size-class-partitioned address space.
    LowFat,
    /// Red-zone shadow memory around allocations (AddressSanitizer-style,
    /// §2.1 of the paper). Detects adjacent overflows only: an access that
    /// jumps past the red zone into another allocation goes unnoticed —
    /// this is the class of incompleteness that motivated the paper's
    /// choice of SoftBound and Low-Fat Pointers.
    RedZone,
}

impl Mechanism {
    /// Lower-case name used in reports and violation messages.
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::SoftBound => "softbound",
            Mechanism::LowFat => "lowfat",
            Mechanism::RedZone => "redzone",
        }
    }
}

/// What the instrumentation generates (`-mi-mode=`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum MiMode {
    /// Full instrumentation: metadata propagation + dereference checks.
    Full,
    /// `geninvariants`: only metadata propagation and invariant
    /// establishment — the configuration behind the "metadata"/"invariants
    /// only" series of Figures 10 and 11.
    GenInvariantsOnly,
}

/// The instrumentation configuration.
#[derive(Clone, Debug)]
pub struct MiConfig {
    /// The mechanism.
    pub mechanism: Mechanism,
    /// Generation mode.
    pub mode: MiMode,
    /// Dominance-based redundant check elimination (`-mi-opt-dominance`,
    /// §5.3). This is the "optimized" configuration of Figures 9–11.
    pub opt_dominance: bool,
    /// SoftBound: use a wide upper bound for external array declarations
    /// without size information (`-mi-sb-size-zero-wide-upper`, §4.3).
    /// When disabled, such globals get NULL bounds and accesses report
    /// spurious violations.
    pub sb_size_zero_wide_upper: bool,
    /// SoftBound: give pointers minted by `inttoptr` wide bounds
    /// (`-mi-sb-inttoptr-wide-bounds`, §4.4). When disabled they get NULL
    /// bounds.
    pub sb_inttoptr_wide_bounds: bool,
    /// SoftBound: enable the additional safety checks inside libc wrappers
    /// (Figure 6). The paper *disables* these for the runtime comparison
    /// (§5.1.2), so the default is `false`.
    pub sb_wrapper_checks: bool,
    /// SoftBound: narrow bounds to the addressed struct member (Appendix B).
    /// Detects intra-object overflows — and, exactly as the appendix warns,
    /// produces false positives on legal idioms like `&P == &P.x` traversal.
    /// Off by default (the paper argues automatic narrowing is unsound).
    pub sb_narrow_member_bounds: bool,
}

impl MiConfig {
    /// The paper's configuration basis for the given mechanism (§A.6):
    /// full instrumentation, wide-bounds escape hatches on for SoftBound,
    /// wrapper checks off, dominance optimization on.
    pub fn new(mechanism: Mechanism) -> MiConfig {
        MiConfig {
            mechanism,
            mode: MiMode::Full,
            opt_dominance: true,
            sb_size_zero_wide_upper: true,
            sb_inttoptr_wide_bounds: true,
            sb_wrapper_checks: false,
            sb_narrow_member_bounds: false,
        }
    }

    /// Same, but without the dominance optimization (the "unoptimized"
    /// series of Figures 10/11).
    pub fn unoptimized(mechanism: Mechanism) -> MiConfig {
        MiConfig { opt_dominance: false, ..MiConfig::new(mechanism) }
    }

    /// Metadata/invariant propagation only (the "metadata" series of
    /// Figures 10/11; `-mi-mode=geninvariants`).
    pub fn invariants_only(mechanism: Mechanism) -> MiConfig {
        MiConfig { mode: MiMode::GenInvariantsOnly, ..MiConfig::new(mechanism) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_basis_defaults() {
        let c = MiConfig::new(Mechanism::SoftBound);
        assert_eq!(c.mode, MiMode::Full);
        assert!(c.opt_dominance);
        assert!(c.sb_size_zero_wide_upper);
        assert!(c.sb_inttoptr_wide_bounds);
        assert!(!c.sb_wrapper_checks, "§5.1.2 disables wrapper checks");
    }

    #[test]
    fn variants() {
        assert!(!MiConfig::unoptimized(Mechanism::LowFat).opt_dominance);
        assert_eq!(MiConfig::invariants_only(Mechanism::LowFat).mode, MiMode::GenInvariantsOnly);
        assert_eq!(Mechanism::LowFat.name(), "lowfat");
        assert_eq!(Mechanism::SoftBound.name(), "softbound");
    }
}
