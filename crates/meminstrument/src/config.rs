//! Instrumentation configuration, mirroring the artifact's command-line
//! flags (§A.6 of the paper), plus the typed [`Instrument`] builder that
//! `cli`, `bench`, and `fuzz` share as the single entry point.

use std::fmt;
use std::str::FromStr;

use memvm::{VmBackend, VmConfig};
use mir::pipeline::{ExtensionPoint, OptLevel};

use crate::runtime::BuildOptions;

/// Which memory-safety mechanism to apply (`-mi-config=`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Mechanism {
    /// SoftBound: disjoint metadata (trie + shadow stack).
    SoftBound,
    /// Low-Fat Pointers: size-class-partitioned address space.
    LowFat,
    /// Red-zone shadow memory around allocations (AddressSanitizer-style,
    /// §2.1 of the paper). Detects adjacent overflows only: an access that
    /// jumps past the red zone into another allocation goes unnoticed —
    /// this is the class of incompleteness that motivated the paper's
    /// choice of SoftBound and Low-Fat Pointers.
    RedZone,
}

impl Mechanism {
    /// Lower-case name used in reports and violation messages.
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::SoftBound => "softbound",
            Mechanism::LowFat => "lowfat",
            Mechanism::RedZone => "redzone",
        }
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Mechanism {
    type Err = String;

    /// Accepts the report name or its CLI short form (`sb`, `lf`, `rz`).
    fn from_str(s: &str) -> Result<Mechanism, String> {
        match s {
            "softbound" | "sb" => Ok(Mechanism::SoftBound),
            "lowfat" | "lf" => Ok(Mechanism::LowFat),
            "redzone" | "rz" => Ok(Mechanism::RedZone),
            other => Err(format!("unknown mechanism `{other}`")),
        }
    }
}

/// What the instrumentation generates (`-mi-mode=`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum MiMode {
    /// Full instrumentation: metadata propagation + dereference checks.
    Full,
    /// `geninvariants`: only metadata propagation and invariant
    /// establishment — the configuration behind the "metadata"/"invariants
    /// only" series of Figures 10 and 11.
    GenInvariantsOnly,
}

/// Which of the §5.3 static check optimizations run.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct OptConfig {
    /// Dominance-based redundant check elimination (`-mi-opt-dominance`).
    pub dominance: bool,
    /// Hoist loop-invariant checks into the loop preheader.
    pub loop_hoist: bool,
    /// Widen monotone induction-variable checks into a single preheader
    /// range check covering every byte the loop accesses.
    pub loop_widen: bool,
    /// Interprocedural summary-based check elision (`mir::analysis::ipo`):
    /// drop checks the caller-propagated pointer summary proves in bounds.
    pub ipo: bool,
}

impl Default for OptConfig {
    /// Everything on — the "optimized" configuration of Figures 9–11.
    fn default() -> OptConfig {
        OptConfig { dominance: true, loop_hoist: true, loop_widen: true, ipo: true }
    }
}

impl OptConfig {
    /// No static check optimization at all (the "unoptimized" series).
    pub fn none() -> OptConfig {
        OptConfig { dominance: false, loop_hoist: false, loop_widen: false, ipo: false }
    }

    /// Dominance elimination only, no loop-aware optimization.
    pub fn no_loops() -> OptConfig {
        OptConfig { loop_hoist: false, loop_widen: false, ..OptConfig::default() }
    }

    /// Everything except interprocedural elision — the `-noipo` ladder
    /// rung the differential suite compares against.
    pub fn no_ipo() -> OptConfig {
        OptConfig { ipo: false, ..OptConfig::default() }
    }

    /// Whether any loop-aware optimization is enabled.
    pub fn any_loop_opts(&self) -> bool {
        self.loop_hoist || self.loop_widen
    }
}

/// The instrumentation configuration.
#[derive(Clone, PartialEq, Debug)]
pub struct MiConfig {
    /// The mechanism.
    pub mechanism: Mechanism,
    /// Generation mode.
    pub mode: MiMode,
    /// Static check optimizations (§5.3). This is the "optimized"
    /// configuration of Figures 9–11 when everything is enabled.
    pub opt: OptConfig,
    /// SoftBound: use a wide upper bound for external array declarations
    /// without size information (`-mi-sb-size-zero-wide-upper`, §4.3).
    /// When disabled, such globals get NULL bounds and accesses report
    /// spurious violations.
    pub sb_size_zero_wide_upper: bool,
    /// SoftBound: give pointers minted by `inttoptr` wide bounds
    /// (`-mi-sb-inttoptr-wide-bounds`, §4.4). When disabled they get NULL
    /// bounds.
    pub sb_inttoptr_wide_bounds: bool,
    /// SoftBound: enable the additional safety checks inside libc wrappers
    /// (Figure 6). The paper *disables* these for the runtime comparison
    /// (§5.1.2), so the default is `false`.
    pub sb_wrapper_checks: bool,
    /// SoftBound: narrow bounds to the addressed struct member (Appendix B).
    /// Detects intra-object overflows — and, exactly as the appendix warns,
    /// produces false positives on legal idioms like `&P == &P.x` traversal.
    /// Off by default (the paper argues automatic narrowing is unsound).
    pub sb_narrow_member_bounds: bool,
}

impl MiConfig {
    /// The paper's configuration basis for the given mechanism (§A.6):
    /// full instrumentation, wide-bounds escape hatches on for SoftBound,
    /// wrapper checks off, check optimizations on.
    pub fn new(mechanism: Mechanism) -> MiConfig {
        MiConfig {
            mechanism,
            mode: MiMode::Full,
            opt: OptConfig::default(),
            sb_size_zero_wide_upper: true,
            sb_inttoptr_wide_bounds: true,
            sb_wrapper_checks: false,
            sb_narrow_member_bounds: false,
        }
    }

    /// Same, but without any static check optimization (the "unoptimized"
    /// series of Figures 10/11).
    pub fn unoptimized(mechanism: Mechanism) -> MiConfig {
        MiConfig { opt: OptConfig::none(), ..MiConfig::new(mechanism) }
    }

    /// Metadata/invariant propagation only (the "metadata" series of
    /// Figures 10/11; `-mi-mode=geninvariants`).
    pub fn invariants_only(mechanism: Mechanism) -> MiConfig {
        MiConfig { mode: MiMode::GenInvariantsOnly, ..MiConfig::new(mechanism) }
    }

    /// Whether this configuration runs interprocedural check elision.
    /// Requires full instrumentation with the `ipo` knob on; disabled
    /// under SoftBound member-bound narrowing, whose sub-object bounds
    /// are stricter than the whole-allocation extents the summaries
    /// prove against.
    pub fn uses_ipo(&self) -> bool {
        self.mode == MiMode::Full
            && self.opt.ipo
            && !(self.mechanism == Mechanism::SoftBound && self.sb_narrow_member_bounds)
    }
}

/// Typed, builder-style description of one compilation cell: *what* to
/// instrument ([`MiConfig`], or nothing for the uninstrumented baseline)
/// plus *where and how hard* the surrounding pipeline optimizes
/// ([`BuildOptions`]).
///
/// This is the documented entry point shared by `cli`, `bench`, and
/// `fuzz`; its [`fmt::Display`]/[`FromStr`] pair is the single source of truth
/// for the configuration labels appearing in every report
/// (`softbound@O3@VectorizerStart`, `lowfat-inv@O0@ScalarOptimizerLate`,
/// `baseline@O3@ModuleOptimizerEarly`, …).
///
/// ```
/// use meminstrument::{ExtensionPoint, Instrument, Mechanism, OptConfig};
///
/// let cell = Instrument::mechanism(Mechanism::SoftBound)
///     .at(ExtensionPoint::ScalarOptimizerLate)
///     .opt(OptConfig { dominance: true, loop_hoist: true, ..OptConfig::default() });
/// assert_eq!(cell.to_string(), "softbound@O3@ScalarOptimizerLate");
/// assert_eq!(cell.to_string().parse::<Instrument>().unwrap(), cell);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Instrument {
    config: Option<MiConfig>,
    opts: BuildOptions,
    /// Which VM engine executes the compiled program. Deliberately *not*
    /// part of the configuration label: both backends are byte-identical,
    /// so reports stay comparable across backends.
    backend: VmBackend,
    /// Flame-sampler interval in cost units (0 = profiling off). Also not
    /// part of the label: sampling observes execution without perturbing
    /// it, so configurations stay comparable with or without a profile.
    sample_interval: u64,
}

impl Instrument {
    /// Instrumentation with `mechanism` at the paper's default pipeline
    /// position (`O3` @ `VectorizerStart`).
    pub fn mechanism(mechanism: Mechanism) -> Instrument {
        Instrument {
            config: Some(MiConfig::new(mechanism)),
            opts: BuildOptions::default(),
            backend: VmBackend::default(),
            sample_interval: 0,
        }
    }

    /// The uninstrumented baseline at the default pipeline position.
    pub fn baseline() -> Instrument {
        Instrument {
            config: None,
            opts: BuildOptions::default(),
            backend: VmBackend::default(),
            sample_interval: 0,
        }
    }

    /// Builds from already-assembled parts (`None` config = baseline).
    pub fn from_parts(config: Option<MiConfig>, opts: BuildOptions) -> Instrument {
        Instrument { config, opts, backend: VmBackend::default(), sample_interval: 0 }
    }

    /// Sets the extension point the instrumentation is inserted at.
    pub fn at(mut self, ep: ExtensionPoint) -> Instrument {
        self.opts.ep = ep;
        self
    }

    /// Sets the pipeline optimization level.
    pub fn opt_level(mut self, opt: OptLevel) -> Instrument {
        self.opts.opt = opt;
        self
    }

    /// Sets the static check-optimization configuration (ignored for the
    /// baseline).
    pub fn opt(mut self, opt: OptConfig) -> Instrument {
        if let Some(c) = &mut self.config {
            c.opt = opt;
        }
        self
    }

    /// Sets the generation mode (ignored for the baseline).
    pub fn mode(mut self, mode: MiMode) -> Instrument {
        if let Some(c) = &mut self.config {
            c.mode = mode;
        }
        self
    }

    /// Applies arbitrary [`MiConfig`] tweaks (the SoftBound toggles, for
    /// example); a no-op for the baseline.
    pub fn configure(mut self, f: impl FnOnce(&mut MiConfig)) -> Instrument {
        if let Some(c) = &mut self.config {
            f(c);
        }
        self
    }

    /// The instrumentation configuration (`None` for the baseline).
    pub fn mi_config(&self) -> Option<&MiConfig> {
        self.config.as_ref()
    }

    /// The mechanism (`None` for the baseline).
    pub fn mechanism_kind(&self) -> Option<Mechanism> {
        self.config.as_ref().map(|c| c.mechanism)
    }

    /// Selects the VM execution engine (tree-walker or bytecode).
    pub fn vm_backend(mut self, backend: VmBackend) -> Instrument {
        self.backend = backend;
        self
    }

    /// The selected VM execution engine.
    pub fn backend(&self) -> VmBackend {
        self.backend
    }

    /// Enables the cost-driven flame sampler: one stack sample every
    /// `interval` charged cost units (0 disables sampling, the default).
    pub fn sample_interval(mut self, interval: u64) -> Instrument {
        self.sample_interval = interval;
        self
    }

    /// The [`VmConfig`] matching this cell: defaults plus the selected
    /// backend.
    pub fn vm_config(&self) -> VmConfig {
        VmConfig {
            backend: self.backend,
            sample_interval: self.sample_interval,
            ..VmConfig::default()
        }
    }

    /// The pipeline options.
    pub fn build_options(&self) -> BuildOptions {
        self.opts
    }

    /// Whether this is the uninstrumented baseline.
    pub fn is_baseline(&self) -> bool {
        self.config.is_none()
    }

    /// Decomposes into `(config, build options)`.
    pub fn into_parts(self) -> (Option<MiConfig>, BuildOptions) {
        (self.config, self.opts)
    }
}

/// The mechanism suffix of a label: how mode and [`OptConfig`] render.
fn opt_suffix(c: &MiConfig) -> String {
    if c.mode == MiMode::GenInvariantsOnly {
        return "-inv".into();
    }
    match (c.opt.dominance, c.opt.loop_hoist, c.opt.loop_widen, c.opt.ipo) {
        (true, true, true, true) => String::new(),
        (false, false, false, false) => "-unopt".into(),
        (true, true, true, false) => "-noipo".into(),
        (true, false, false, true) => "-noloop".into(),
        (false, true, true, true) => "-nodom".into(),
        (d, h, w, i) => format!("-optd{}h{}w{}i{}", d as u8, h as u8, w as u8, i as u8),
    }
}

fn parse_suffix(s: &str) -> Result<(MiMode, OptConfig), String> {
    match s {
        "" => Ok((MiMode::Full, OptConfig::default())),
        "-inv" => Ok((MiMode::GenInvariantsOnly, OptConfig::default())),
        "-unopt" => Ok((MiMode::Full, OptConfig::none())),
        "-noipo" => Ok((MiMode::Full, OptConfig::no_ipo())),
        "-noloop" => Ok((MiMode::Full, OptConfig::no_loops())),
        "-nodom" => Ok((MiMode::Full, OptConfig { dominance: false, ..OptConfig::default() })),
        _ => {
            let rest =
                s.strip_prefix("-optd").ok_or_else(|| format!("unknown config suffix `{s}`"))?;
            let bit = |c: u8| match c {
                b'0' => Ok(false),
                b'1' => Ok(true),
                _ => Err(format!("unknown config suffix `{s}`")),
            };
            match rest.as_bytes() {
                [d, b'h', h, b'w', w, b'i', i] => Ok((
                    MiMode::Full,
                    OptConfig {
                        dominance: bit(*d)?,
                        loop_hoist: bit(*h)?,
                        loop_widen: bit(*w)?,
                        ipo: bit(*i)?,
                    },
                )),
                // Pre-ipo labels: `-optd{d}h{h}w{w}` implied ipo on.
                [d, b'h', h, b'w', w] => Ok((
                    MiMode::Full,
                    OptConfig {
                        dominance: bit(*d)?,
                        loop_hoist: bit(*h)?,
                        loop_widen: bit(*w)?,
                        ipo: true,
                    },
                )),
                _ => Err(format!("unknown config suffix `{s}`")),
            }
        }
    }
}

impl fmt::Display for Instrument {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.config {
            None => write!(f, "baseline@{}@{}", self.opts.opt, self.opts.ep),
            Some(c) => {
                write!(f, "{}{}@{}@{}", c.mechanism, opt_suffix(c), self.opts.opt, self.opts.ep)
            }
        }
    }
}

impl FromStr for Instrument {
    type Err = String;

    /// Parses a configuration label of the form
    /// `<mechanism>[-<suffix>]@<opt level>@<extension point>` (or
    /// `baseline@…`), the inverse of [`fmt::Display`]. Mechanism and extension
    /// point accept their CLI short forms.
    fn from_str(s: &str) -> Result<Instrument, String> {
        let mut parts = s.split('@');
        let (mech_spec, opt, ep) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(o), Some(e), None) => (m, o, e),
            _ => return Err(format!("expected `<config>@<opt level>@<extension point>`: `{s}`")),
        };
        let opts = BuildOptions { opt: opt.parse()?, ep: ep.parse()? };
        if mech_spec == "baseline" || mech_spec == "none" {
            return Ok(Instrument {
                config: None,
                opts,
                backend: VmBackend::default(),
                sample_interval: 0,
            });
        }
        // The mechanism name is dash-free, so the first `-` starts the
        // mode/optimization suffix.
        let (mech_str, suffix) = match mech_spec.find('-') {
            Some(i) => mech_spec.split_at(i),
            None => (mech_spec, ""),
        };
        let mechanism: Mechanism = mech_str.parse()?;
        let (mode, opt) = parse_suffix(suffix)?;
        let config = MiConfig { mode, opt, ..MiConfig::new(mechanism) };
        Ok(Instrument {
            config: Some(config),
            opts,
            backend: VmBackend::default(),
            sample_interval: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_basis_defaults() {
        let c = MiConfig::new(Mechanism::SoftBound);
        assert_eq!(c.mode, MiMode::Full);
        assert_eq!(c.opt, OptConfig::default());
        assert!(c.opt.dominance && c.opt.loop_hoist && c.opt.loop_widen);
        assert!(c.sb_size_zero_wide_upper);
        assert!(c.sb_inttoptr_wide_bounds);
        assert!(!c.sb_wrapper_checks, "§5.1.2 disables wrapper checks");
    }

    #[test]
    fn variants() {
        assert_eq!(MiConfig::unoptimized(Mechanism::LowFat).opt, OptConfig::none());
        assert!(!MiConfig::unoptimized(Mechanism::LowFat).opt.any_loop_opts());
        assert_eq!(MiConfig::invariants_only(Mechanism::LowFat).mode, MiMode::GenInvariantsOnly);
        assert_eq!(Mechanism::LowFat.name(), "lowfat");
        assert_eq!(Mechanism::SoftBound.name(), "softbound");
        assert!(OptConfig::no_loops().dominance);
        assert!(!OptConfig::no_loops().any_loop_opts());
        assert!(OptConfig::no_loops().ipo);
        assert!(!OptConfig::no_ipo().ipo);
        assert!(OptConfig::no_ipo().any_loop_opts());
    }

    #[test]
    fn uses_ipo_gating() {
        assert!(MiConfig::new(Mechanism::SoftBound).uses_ipo());
        assert!(MiConfig::new(Mechanism::RedZone).uses_ipo());
        assert!(!MiConfig::unoptimized(Mechanism::LowFat).uses_ipo());
        assert!(!MiConfig::invariants_only(Mechanism::LowFat).uses_ipo());
        let narrow =
            MiConfig { sb_narrow_member_bounds: true, ..MiConfig::new(Mechanism::SoftBound) };
        assert!(!narrow.uses_ipo());
        // Narrowing is SoftBound-only; it must not disable ipo elsewhere.
        let narrow_lf =
            MiConfig { sb_narrow_member_bounds: true, ..MiConfig::new(Mechanism::LowFat) };
        assert!(narrow_lf.uses_ipo());
    }

    #[test]
    fn mechanism_round_trip_and_short_forms() {
        for m in [Mechanism::SoftBound, Mechanism::LowFat, Mechanism::RedZone] {
            assert_eq!(m.to_string().parse::<Mechanism>(), Ok(m));
        }
        assert_eq!("sb".parse::<Mechanism>(), Ok(Mechanism::SoftBound));
        assert_eq!("lf".parse::<Mechanism>(), Ok(Mechanism::LowFat));
        assert_eq!("rz".parse::<Mechanism>(), Ok(Mechanism::RedZone));
        assert!("asan".parse::<Mechanism>().is_err());
    }

    #[test]
    fn builder_produces_expected_labels() {
        assert_eq!(Instrument::baseline().to_string(), "baseline@O3@VectorizerStart");
        assert_eq!(
            Instrument::mechanism(Mechanism::SoftBound).to_string(),
            "softbound@O3@VectorizerStart"
        );
        assert_eq!(
            Instrument::mechanism(Mechanism::LowFat).mode(MiMode::GenInvariantsOnly).to_string(),
            "lowfat-inv@O3@VectorizerStart"
        );
        assert_eq!(
            Instrument::mechanism(Mechanism::SoftBound)
                .at(ExtensionPoint::ModuleOptimizerEarly)
                .to_string(),
            "softbound@O3@ModuleOptimizerEarly"
        );
        assert_eq!(
            Instrument::mechanism(Mechanism::RedZone)
                .opt(OptConfig::none())
                .opt_level(OptLevel::O0)
                .to_string(),
            "redzone-unopt@O0@VectorizerStart"
        );
        assert_eq!(
            Instrument::mechanism(Mechanism::LowFat).opt(OptConfig::no_loops()).to_string(),
            "lowfat-noloop@O3@VectorizerStart"
        );
        assert_eq!(
            Instrument::mechanism(Mechanism::SoftBound).opt(OptConfig::no_ipo()).to_string(),
            "softbound-noipo@O3@VectorizerStart"
        );
    }

    #[test]
    fn labels_round_trip() {
        let mut cells: Vec<Instrument> = vec![Instrument::baseline()];
        for m in [Mechanism::SoftBound, Mechanism::LowFat, Mechanism::RedZone] {
            for opt in [
                OptConfig::default(),
                OptConfig::none(),
                OptConfig::no_loops(),
                OptConfig::no_ipo(),
                OptConfig { dominance: false, ..OptConfig::default() },
                OptConfig { loop_widen: false, ..OptConfig::default() },
                OptConfig { loop_widen: false, ipo: false, ..OptConfig::default() },
            ] {
                cells.push(
                    Instrument::mechanism(m).opt(opt).at(ExtensionPoint::ScalarOptimizerLate),
                );
            }
            cells.push(
                Instrument::mechanism(m).mode(MiMode::GenInvariantsOnly).opt_level(OptLevel::O0),
            );
        }
        for cell in cells {
            let label = cell.to_string();
            let parsed: Instrument = label.parse().unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(parsed, cell, "{label}");
        }
    }

    #[test]
    fn parse_accepts_short_forms_and_rejects_garbage() {
        let c: Instrument = "sb@O0@vec".parse().unwrap();
        assert_eq!(c.mechanism_kind(), Some(Mechanism::SoftBound));
        assert_eq!(c.build_options().opt, OptLevel::O0);
        assert_eq!(c.build_options().ep, ExtensionPoint::VectorizerStart);
        assert!("sb@O0".parse::<Instrument>().is_err());
        assert!("sb@O1@vec".parse::<Instrument>().is_err());
        assert!("sb-bogus@O0@vec".parse::<Instrument>().is_err());
        assert!("@@".parse::<Instrument>().is_err());
        // `-noipo` round-trips; legacy three-bit labels imply ipo on.
        let c: Instrument = "lf-noipo@O3@vec".parse().unwrap();
        assert_eq!(c.to_string(), "lowfat-noipo@O3@VectorizerStart");
        let legacy: Instrument = "sb-optd1h0w1@O3@vec".parse().unwrap();
        assert_eq!(legacy.to_string(), "softbound-optd1h0w1i1@O3@VectorizerStart");
        assert!("sb-optd1h0w1i2@O3@vec".parse::<Instrument>().is_err());
    }
}
