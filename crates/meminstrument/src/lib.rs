#![warn(missing_docs)]

//! MemInstrument-RS: a memory-safety instrumentation framework.
//!
//! This crate reproduces the framework contribution of *"Memory Safety
//! Instrumentations in Practice"* (CGO'25): common infrastructure —
//! instrumentation-target discovery (Table 1), witness propagation, and
//! approach-independent check optimization (§5.3) — shared by two
//! mechanisms, **SoftBound** (§3.2) and **Low-Fat Pointers** (§3.3), so the
//! two can be compared fairly.
//!
//! # Architecture
//!
//! * [`itarget`] discovers *instrumentation targets* on unmodified IR:
//!   dereference checks at loads/stores, invariants at pointer escapes,
//!   metadata updates at `memcpy`.
//! * [`opt`] filters and rewrites targets: dominance-based redundant-check
//!   elimination, loop-invariant check hoisting, and induction-variable
//!   range widening (§5.3), all configured by [`OptConfig`].
//! * [`witness`] resolves a *witness* (the values carrying a pointer's
//!   bounds) for every pointer that needs one, handling the shared SSA
//!   plumbing (phi/select companions, gep inheritance) and delegating true
//!   sources (allocations, loads, params, …) to the mechanism.
//! * [`mechanism`] defines the [`mechanism::MechanismLowering`] trait and
//!   its implementations (SoftBound, Low-Fat Pointers, red zones).
//! * [`pass`] is the module pass gluing it together; it plugs into
//!   [`mir::Pipeline`] at any extension point (Figure 8).
//! * [`runtime`] installs the runtime library (checks, trie, shadow stack,
//!   low-fat allocators) into a [`memvm::Vm`] and provides the end-to-end
//!   [`runtime::compile_and_run`] convenience used by examples and benches.
//!
//! # Quickstart
//!
//! The [`Instrument`] builder is the documented entry point: it names an
//! instrumentation cell — mechanism, pipeline extension point, optimization
//! level, check-optimization flags — and compiles/runs modules under it.
//!
//! ```
//! use meminstrument::{ExtensionPoint, Instrument, Mechanism};
//!
//! let src = r#"
//!     hostdecl ptr @malloc(i64)
//!     define i64 @main() {
//!     entry:
//!       %p = call ptr @malloc(i64 16)
//!       %q = gep i64, %p, [i64 4]    ; out of bounds
//!       store i64, i64 1, %q
//!       ret i64 0
//!     }
//! "#;
//! let module = mir::parser::parse_module(src).unwrap();
//! let cell = Instrument::mechanism(Mechanism::SoftBound).at(ExtensionPoint::VectorizerStart);
//! assert_eq!(cell.to_string(), "softbound@O3@VectorizerStart");
//! let result = cell.run(module);
//! assert!(result.is_err(), "SoftBound must catch the overflow");
//! ```

pub mod config;
pub mod hostdefs;
pub mod itarget;
pub mod mechanism;
pub mod opt;
pub mod pass;
pub mod runtime;
pub mod stats;
pub mod witness;

pub use config::{Instrument, Mechanism, MiConfig, MiMode, OptConfig};
pub use itarget::CheckPlacement;
pub use opt::ElisionRecord;
pub use pass::MemInstrumentPass;
pub use runtime::{
    compile, compile_and_run, install_runtime, BuildOptions, CompiledProgram, SbAccess, SbAccessLog,
};
pub use stats::InstrStats;

/// Re-export of the VM backend selector, for `Instrument::vm_backend`.
pub use memvm::VmBackend;

// Re-exported so builder call sites can name pipeline cells without an
// explicit `mir` dependency edge in every downstream crate.
pub use mir::pipeline::{ExtensionPoint, OptLevel};
