//! Instrumentation-target discovery (Table 1 of the paper).
//!
//! Discovery runs over the *unmodified* function and produces a list of
//! targets; the shared optimization filters them; the mechanism lowers
//! them. This separation is what makes the comparison fair: both mechanisms
//! check and propagate at exactly the same program points.

use mir::ids::{BlockId, InstrId};
use mir::instr::{CastOp, InstrKind, Operand};
use mir::{Function, Type};

/// Where a check call is inserted relative to the access it guards.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CheckPlacement {
    /// Immediately before the access instruction (the default).
    AtAccess,
    /// At the end of the given block, before its terminator. Used by the
    /// loop optimizations (§5.3) to hoist or widen a check into the loop
    /// preheader.
    BlockEnd(BlockId),
}

/// A dereference that needs an in-bounds check.
#[derive(Clone, Debug)]
pub struct CheckTarget {
    /// The access instruction (`load` or `store`). Also for hoisted or
    /// widened checks this stays the *guarded access*, so check-site
    /// provenance (source line, ASan-style allocation description) reports
    /// the access rather than the preheader.
    pub instr: InstrId,
    /// Block containing the access.
    pub block: BlockId,
    /// The pointer the check validates. For widened checks the optimizer
    /// redirects this to a preheader address covering the loop's first
    /// accessed byte.
    pub ptr: Operand,
    /// Checked width in bytes (the access width, or for widened checks the
    /// whole `[first, last]` byte range the loop accesses).
    pub width: u64,
    /// Whether the access is a store.
    pub is_store: bool,
    /// Where the check call is placed.
    pub placement: CheckPlacement,
}

/// Why a pointer escapes (drives mechanism-specific invariant code).
#[derive(Clone, Debug)]
pub enum EscapeKind {
    /// A pointer value is stored to memory: `store ptr %v, %addr`.
    StoredToMemory {
        /// The escaping pointer value.
        value: Operand,
        /// Where it is stored.
        addr: Operand,
    },
    /// A pointer is passed to / returned from a function via `call`.
    Call,
    /// A pointer is returned from this function.
    Returned {
        /// The returned pointer.
        value: Operand,
        /// Block whose terminator returns it.
        block: BlockId,
    },
    /// A pointer is cast to an integer (`ptrtoint` or an equivalent
    /// bitcast) — §4.4.
    CastToInt {
        /// The pointer operand of the cast.
        value: Operand,
    },
    /// `memcpy`: SoftBound must copy metadata; wrappers may check.
    MemCpy,
    /// `memset`: SoftBound must invalidate metadata for overwritten slots.
    MemSet,
}

/// A point where the mechanism's invariant must be established.
#[derive(Clone, Debug)]
pub struct InvariantTarget {
    /// The instruction at which the escape happens (`InstrId` of the
    /// store/call/cast/memcpy; unused for `Returned`).
    pub instr: Option<InstrId>,
    /// Block containing the escape.
    pub block: BlockId,
    /// The kind of escape.
    pub kind: EscapeKind,
}

/// All targets of one function.
#[derive(Clone, Debug, Default)]
pub struct Targets {
    /// Dereference checks.
    pub checks: Vec<CheckTarget>,
    /// Invariant/metadata points.
    pub invariants: Vec<InvariantTarget>,
}

/// Discovers the instrumentation targets of `f` (Table 1).
pub fn discover(f: &Function) -> Targets {
    let mut t = Targets::default();
    for (bid, block) in f.iter_blocks() {
        for &iid in &block.instrs {
            match &f.instrs[iid.index()].kind {
                InstrKind::Load { ty, ptr } => {
                    t.checks.push(CheckTarget {
                        instr: iid,
                        block: bid,
                        ptr: ptr.clone(),
                        width: ty.size_of().max(1),
                        is_store: false,
                        placement: CheckPlacement::AtAccess,
                    });
                }
                InstrKind::Store { ty, value, ptr } => {
                    t.checks.push(CheckTarget {
                        instr: iid,
                        block: bid,
                        ptr: ptr.clone(),
                        width: ty.size_of().max(1),
                        is_store: true,
                        placement: CheckPlacement::AtAccess,
                    });
                    if *ty == Type::Ptr {
                        t.invariants.push(InvariantTarget {
                            instr: Some(iid),
                            block: bid,
                            kind: EscapeKind::StoredToMemory {
                                value: value.clone(),
                                addr: ptr.clone(),
                            },
                        });
                    }
                }
                InstrKind::Call { callee, .. } if crate::witness::is_runtime_callee(callee) => {
                    // The instrumentation runtime's own helpers are never
                    // targets.
                }
                InstrKind::Call { .. } | InstrKind::CallIndirect { .. } => {
                    // The mechanism decides per callee what to do; discovery
                    // just records that pointers may escape here.
                    let has_ptr_arg = {
                        let mut any = false;
                        f.instrs[iid.index()].kind.for_each_operand(|op| {
                            if f.operand_type(op) == Type::Ptr {
                                any = true;
                            }
                        });
                        any
                    };
                    let returns_ptr = f.instrs[iid.index()]
                        .result
                        .map(|r| *f.value_type(r) == Type::Ptr)
                        .unwrap_or(false);
                    if has_ptr_arg || returns_ptr {
                        t.invariants.push(InvariantTarget {
                            instr: Some(iid),
                            block: bid,
                            kind: EscapeKind::Call,
                        });
                    }
                }
                InstrKind::Cast { op, value, from, to } => {
                    let ptr_to_int = matches!(op, CastOp::PtrToInt)
                        || (matches!(op, CastOp::Bitcast) && from.is_ptr() && to.is_int());
                    if ptr_to_int {
                        t.invariants.push(InvariantTarget {
                            instr: Some(iid),
                            block: bid,
                            kind: EscapeKind::CastToInt { value: value.clone() },
                        });
                    }
                }
                InstrKind::MemCpy { .. } => {
                    t.invariants.push(InvariantTarget {
                        instr: Some(iid),
                        block: bid,
                        kind: EscapeKind::MemCpy,
                    });
                }
                InstrKind::MemSet { .. } => {
                    t.invariants.push(InvariantTarget {
                        instr: Some(iid),
                        block: bid,
                        kind: EscapeKind::MemSet,
                    });
                }
                _ => {}
            }
        }
        if let mir::Terminator::Ret(Some(op)) = &block.term {
            if f.ret_ty == Type::Ptr {
                t.invariants.push(InvariantTarget {
                    instr: None,
                    block: bid,
                    kind: EscapeKind::Returned { value: op.clone(), block: bid },
                });
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mir::builder::ModuleBuilder;
    use mir::module::Effect;

    #[test]
    fn loads_and_stores_become_checks() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr)], Type::I64);
        let p = fb.param(0);
        let v = fb.load(Type::I32, p.clone());
        fb.store(Type::I32, v.clone(), p);
        let w = fb.cast(CastOp::Zext, v, Type::I32, Type::I64);
        fb.ret(Some(w));
        fb.finish();
        let m = mb.finish();
        let t = discover(m.function_by_name("f").unwrap().1);
        assert_eq!(t.checks.len(), 2);
        assert_eq!(t.checks[0].width, 4);
        assert!(!t.checks[0].is_store);
        assert!(t.checks[1].is_store);
    }

    #[test]
    fn pointer_store_is_also_an_escape() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr), ("q", Type::Ptr)], Type::Void);
        let p = fb.param(0);
        let q = fb.param(1);
        fb.store(Type::Ptr, p, q);
        fb.ret(None);
        fb.finish();
        let m = mb.finish();
        let t = discover(m.function_by_name("f").unwrap().1);
        assert_eq!(t.checks.len(), 1); // the store itself is checked
        assert_eq!(t.invariants.len(), 1);
        assert!(matches!(t.invariants[0].kind, EscapeKind::StoredToMemory { .. }));
    }

    #[test]
    fn integer_store_is_not_an_escape() {
        // The §4.4 blind spot: a pointer smuggled through an i64 store is
        // invisible to discovery — by design, this reproduces the paper.
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr), ("q", Type::Ptr)], Type::Void);
        let p = fb.param(0);
        let q = fb.param(1);
        let as_int = fb.cast(CastOp::PtrToInt, p, Type::Ptr, Type::I64);
        fb.store(Type::I64, as_int, q);
        fb.ret(None);
        fb.finish();
        let m = mb.finish();
        let t = discover(m.function_by_name("f").unwrap().1);
        let stores: Vec<_> = t
            .invariants
            .iter()
            .filter(|i| matches!(i.kind, EscapeKind::StoredToMemory { .. }))
            .collect();
        assert!(stores.is_empty());
        // ... but the ptrtoint itself is an escape (Low-Fat checks it).
        assert!(t.invariants.iter().any(|i| matches!(i.kind, EscapeKind::CastToInt { .. })));
    }

    #[test]
    fn calls_returns_memcpy_discovered() {
        let mut mb = ModuleBuilder::new("m");
        mb.host("sink", vec![Type::Ptr], Type::Void, Effect::Effectful);
        let mut fb = mb.function("f", vec![("p", Type::Ptr)], Type::Ptr);
        let p = fb.param(0);
        fb.call("sink", Type::Void, vec![p.clone()]);
        fb.memcpy(p.clone(), p.clone(), Operand::i64(8));
        fb.ret(Some(p));
        fb.finish();
        let m = mb.finish();
        let t = discover(m.function_by_name("f").unwrap().1);
        assert!(t.invariants.iter().any(|i| matches!(i.kind, EscapeKind::Call)));
        assert!(t.invariants.iter().any(|i| matches!(i.kind, EscapeKind::MemCpy)));
        assert!(t.invariants.iter().any(|i| matches!(i.kind, EscapeKind::Returned { .. })));
    }

    #[test]
    fn call_without_pointers_not_a_target() {
        let mut mb = ModuleBuilder::new("m");
        mb.host("pure_int", vec![Type::I64], Type::I64, Effect::Pure);
        let mut fb = mb.function("f", vec![], Type::I64);
        let r = fb.call("pure_int", Type::I64, vec![Operand::i64(1)]);
        fb.ret(Some(r));
        fb.finish();
        let m = mb.finish();
        let t = discover(m.function_by_name("f").unwrap().1);
        assert!(t.invariants.is_empty());
        assert!(t.checks.is_empty());
    }
}
