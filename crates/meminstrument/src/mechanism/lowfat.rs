//! Low-Fat Pointers lowering (§3.3 of the paper).
//!
//! Witness = allocation base pointer. Fresh allocations *are* their own
//! base; everything arriving from memory, calls, or parameters relies on
//! the in-bounds invariant and recomputes the base from the pointer value
//! (`__lf_base`, pure arithmetic). The invariant is established by an
//! in-bounds check wherever a pointer escapes — which is exactly what makes
//! escaping out-of-bounds pointers report spurious errors (§4.2).
//!
//! `prepare_function` applies the stack extension (NDSS'17): allocas become
//! low-fat stack allocations bracketed by save/restore; the globals
//! extension is applied at module level by the pass (mirroring via the
//! `lowfat` global attribute).

use mir::ids::{BlockId, InstrId};
use mir::instr::{BinOp, InstrKind, Operand, Terminator};
use mir::types::Type;

use crate::hostdefs as h;
use crate::itarget::CheckTarget;
use crate::mechanism::{MechanismLowering, PtrArg};
use crate::witness::{InstrumentCx, InstrumentationMechanism, Source, Witness};

/// The Low-Fat Pointers mechanism.
#[derive(Debug, Default)]
pub struct LowFatMech;

impl LowFatMech {
    fn call(name: &str, args: Vec<Operand>, ret: Type) -> InstrKind {
        InstrKind::Call { callee: name.to_string(), args, ret }
    }

    /// `__lf_base(ptr)` inserted after the defining instruction.
    fn base_after(&self, cx: &mut InstrumentCx<'_>, anchor: InstrId, ptr: Operand) -> Witness {
        cx.stats.metadata_loads_placed += 1;
        let b = cx.insert_witness_after(anchor, Self::call(h::LF_BASE, vec![ptr], Type::Ptr));
        Witness(vec![cx.result_of(b)])
    }

    /// `__lf_base(ptr)` at function entry (for parameters).
    fn base_at_entry(&self, cx: &mut InstrumentCx<'_>, ptr: Operand) -> Witness {
        cx.stats.metadata_loads_placed += 1;
        let b = cx.insert_at_entry(Self::call(h::LF_BASE, vec![ptr], Type::Ptr));
        Witness(vec![cx.result_of(b)])
    }

    fn invariant_before(
        &self,
        cx: &mut InstrumentCx<'_>,
        anchor: InstrId,
        value: &Operand,
        witness: &Witness,
    ) {
        let site =
            cx.register_site(mir::srcloc::SiteKind::Invariant, false, None, Some(anchor), value);
        cx.insert_before(
            anchor,
            Self::call(
                h::LF_INVARIANT,
                vec![value.clone(), witness.0[0].clone(), site],
                Type::Void,
            ),
        );
        cx.stats.invariants_placed += 1;
    }
}

impl InstrumentationMechanism for LowFatMech {
    fn arity(&self) -> usize {
        1
    }

    fn witness_for_source(&mut self, cx: &mut InstrumentCx<'_>, src: &Source) -> Witness {
        match src {
            // A fresh allocation is its own base (heap via the replaced
            // low-fat malloc; stack via __lf_stack_alloc).
            Source::HeapAlloc { instr, .. } => Witness(vec![cx.result_of(*instr)]),
            // An alloca that was *not* replaced (oversized fallback) yields
            // a non-low-fat pointer; using it as its own base gives wide
            // bounds downstream.
            Source::Alloca { instr } => Witness(vec![cx.result_of(*instr)]),
            // Mirrored globals are low-fat; uninstrumented-library globals
            // are not and end up with wide bounds (§4.3).
            Source::Global(gid) => Witness(vec![Operand::GlobalAddr(*gid)]),
            // "Rely on invariant: assume in bounds" (Table 1).
            Source::LoadedFromMemory { instr, .. } => {
                let ptr = cx.result_of(*instr);
                self.base_after(cx, *instr, ptr)
            }
            Source::CallResult { instr, .. } => {
                let ptr = cx.result_of(*instr);
                self.base_after(cx, *instr, ptr)
            }
            Source::IntToPtr { instr } => {
                // §4.4: rely on the invariant established at the matching
                // ptrtoint — nothing prevents corruption in between.
                let ptr = cx.result_of(*instr);
                self.base_after(cx, *instr, ptr)
            }
            Source::Param(i) => {
                let ptr = Operand::Val(cx.func.param_value(*i));
                self.base_at_entry(cx, ptr)
            }
            Source::NullPtr => Witness(vec![Operand::Null]),
            Source::Opaque => Witness(vec![Operand::Null]),
        }
    }
}

impl MechanismLowering for LowFatMech {
    fn prepare_function(&mut self, cx: &mut InstrumentCx<'_>) {
        // Replace allocas with low-fat stack allocations (in place, so the
        // result ValueId — and with it every use — stays valid).
        let mut replaced_any = false;
        for bi in 0..cx.func.blocks.len() {
            let ids = cx.func.blocks[bi].instrs.clone();
            for iid in ids {
                let (ty, count) = match &cx.func.instrs[iid.index()].kind {
                    InstrKind::Alloca { ty, count } => (ty.clone(), count.clone()),
                    _ => continue,
                };
                let elem = ty.size_of().max(1);
                let size_op = match count.as_const_int() {
                    Some(n) => Operand::i64(elem as i64 * n),
                    None => {
                        let mul = cx.insert_before(
                            iid,
                            InstrKind::Bin {
                                op: BinOp::Mul,
                                ty: Type::I64,
                                lhs: Operand::i64(elem as i64),
                                rhs: count,
                            },
                        );
                        cx.result_of(mul)
                    }
                };
                cx.func.instrs[iid.index()].kind =
                    Self::call(h::LF_STACK_ALLOC, vec![size_op], Type::Ptr);
                cx.stats.allocas_replaced += 1;
                replaced_any = true;
            }
        }
        if !replaced_any {
            return;
        }
        // Bracket the frame: save at entry, restore before every return.
        let save = cx.insert_at_entry(Self::call(h::LF_STACK_SAVE, vec![], Type::I64));
        let token = cx.result_of(save);
        for bi in 0..cx.func.blocks.len() {
            if matches!(cx.func.blocks[bi].term, Terminator::Ret(_)) {
                cx.insert_at_block_end(
                    BlockId::new(bi),
                    Self::call(h::LF_STACK_RESTORE, vec![token.clone()], Type::Void),
                );
            }
        }
    }

    fn emit_check(&mut self, cx: &mut InstrumentCx<'_>, target: &CheckTarget, witness: &Witness) {
        let site = cx.register_site(
            mir::srcloc::SiteKind::Deref,
            target.is_store,
            Some(target.width),
            Some(target.instr),
            &target.ptr,
        );
        cx.insert_check(
            target,
            Self::call(
                h::LF_CHECK,
                vec![
                    target.ptr.clone(),
                    Operand::i64(target.width as i64),
                    witness.0[0].clone(),
                    site,
                ],
                Type::Void,
            ),
        );
        cx.stats.checks_placed += 1;
    }

    fn emit_store_escape(
        &mut self,
        cx: &mut InstrumentCx<'_>,
        store: InstrId,
        value: &Operand,
        _addr: &Operand,
        witness: &Witness,
    ) {
        // Establish the invariant with an in-bounds check (Table 1).
        self.invariant_before(cx, store, value, witness);
    }

    fn emit_return_escape(
        &mut self,
        cx: &mut InstrumentCx<'_>,
        block: BlockId,
        value: &Operand,
        witness: &Witness,
    ) {
        let site = cx.register_site(mir::srcloc::SiteKind::Invariant, false, None, None, value);
        let pos_kind = Self::call(
            h::LF_INVARIANT,
            vec![value.clone(), witness.0[0].clone(), site],
            Type::Void,
        );
        cx.insert_at_block_end(block, pos_kind);
        cx.stats.invariants_placed += 1;
    }

    fn emit_cast_escape(
        &mut self,
        cx: &mut InstrumentCx<'_>,
        cast: InstrId,
        value: &Operand,
        witness: &Witness,
    ) {
        self.invariant_before(cx, cast, value, witness);
    }

    fn emit_call_escape(
        &mut self,
        cx: &mut InstrumentCx<'_>,
        call: InstrId,
        _callee: Option<&str>,
        ptr_args: &[PtrArg],
        _returns_ptr: bool,
    ) {
        // Every pointer handed to another function is invariant-checked —
        // including calls into uninstrumented code. This is the behaviour
        // that rejects escape-then-repair pointer arithmetic (§4.2).
        for pa in ptr_args {
            self.invariant_before(cx, call, &pa.value, &pa.witness);
        }
    }

    fn emit_memcpy(
        &mut self,
        cx: &mut InstrumentCx<'_>,
        instr: InstrId,
        wrapper_witnesses: Option<(&Witness, &Witness)>,
    ) {
        // No metadata to maintain (§4.5: byte-wise copies pose no problem
        // for Low-Fat Pointers). Optional wrapper checks only.
        if let Some((wd, ws)) = wrapper_witnesses {
            let (dst, src, len) = match &cx.func.instrs[instr.index()].kind {
                InstrKind::MemCpy { dst, src, len } => (dst.clone(), src.clone(), len.clone()),
                other => unreachable!("memcpy target is {other:?}"),
            };
            let width = len.as_const_int().map(|n| n.max(0) as u64);
            let dsite =
                cx.register_site(mir::srcloc::SiteKind::Wrapper, true, width, Some(instr), &dst);
            cx.insert_before(
                instr,
                Self::call(h::LF_CHECK, vec![dst, len.clone(), wd.0[0].clone(), dsite], Type::Void),
            );
            let ssite =
                cx.register_site(mir::srcloc::SiteKind::Wrapper, false, width, Some(instr), &src);
            cx.insert_before(
                instr,
                Self::call(h::LF_CHECK, vec![src, len, ws.0[0].clone(), ssite], Type::Void),
            );
            cx.stats.checks_placed += 2;
        }
    }

    fn emit_memset(&mut self, _cx: &mut InstrumentCx<'_>, _instr: InstrId) {}
}
