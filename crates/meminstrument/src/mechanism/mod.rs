//! Mechanism lowerings: SoftBound (§3.2) and Low-Fat Pointers (§3.3).
//!
//! Both implement [`crate::witness::InstrumentationMechanism`] for witness
//! materialization plus the [`MechanismLowering`] hooks the pass driver
//! calls for checks, escapes, and function pre-/post-processing.

pub mod lowfat;
pub mod redzone;
pub mod softbound;

use mir::ids::{BlockId, InstrId};
use mir::instr::Operand;

use crate::itarget::CheckTarget;
use crate::witness::{InstrumentCx, InstrumentationMechanism, Witness};

/// One pointer argument of a call, with its resolved witness.
#[derive(Clone, Debug)]
pub struct PtrArg {
    /// Index into the call's argument list.
    pub arg_index: usize,
    /// The pointer operand.
    pub value: Operand,
    /// Its witness.
    pub witness: Witness,
}

/// Lowering hooks invoked by the pass driver after witnesses are resolved.
pub trait MechanismLowering: InstrumentationMechanism {
    /// Pre-discovery transformation (Low-Fat: replace allocas, insert stack
    /// save/restore). Runs on the raw function.
    fn prepare_function(&mut self, cx: &mut InstrumentCx<'_>);

    /// Inserts the dereference check for `target` (only called in
    /// [`crate::MiMode::Full`]).
    fn emit_check(&mut self, cx: &mut InstrumentCx<'_>, target: &CheckTarget, witness: &Witness);

    /// A pointer value is stored to memory.
    fn emit_store_escape(
        &mut self,
        cx: &mut InstrumentCx<'_>,
        store: InstrId,
        value: &Operand,
        addr: &Operand,
        witness: &Witness,
    );

    /// A pointer is returned from the function (insert before the
    /// terminator of `block`).
    fn emit_return_escape(
        &mut self,
        cx: &mut InstrumentCx<'_>,
        block: BlockId,
        value: &Operand,
        witness: &Witness,
    );

    /// A pointer is cast to an integer.
    fn emit_cast_escape(
        &mut self,
        cx: &mut InstrumentCx<'_>,
        cast: InstrId,
        value: &Operand,
        witness: &Witness,
    );

    /// A call with pointer arguments and/or pointer result. `callee` is
    /// `None` for indirect calls; `ptr_args` excludes non-pointer args.
    fn emit_call_escape(
        &mut self,
        cx: &mut InstrumentCx<'_>,
        call: InstrId,
        callee: Option<&str>,
        ptr_args: &[PtrArg],
        returns_ptr: bool,
    );

    /// A `memcpy`; witnesses for dst/src are provided when wrapper checks
    /// are enabled.
    fn emit_memcpy(
        &mut self,
        cx: &mut InstrumentCx<'_>,
        instr: InstrId,
        wrapper_witnesses: Option<(&Witness, &Witness)>,
    );

    /// A `memset`.
    fn emit_memset(&mut self, cx: &mut InstrumentCx<'_>, instr: InstrId);
}
