//! SoftBound lowering (§3.2 of the paper).
//!
//! Witness = `(base, bound)`. Allocation sites yield bounds from IR-visible
//! sizes; loads pull bounds from the metadata trie; calls and returns go
//! through the shadow stack; stores of pointers update the trie. The
//! dereference check is Figure 2's `ptr < base || ptr + width > bound`.

use mir::ids::{BlockId, InstrId};
use mir::instr::{BinOp, InstrKind, Operand};
use mir::types::Type;

use crate::hostdefs as h;
use crate::itarget::CheckTarget;
use crate::mechanism::{MechanismLowering, PtrArg};
use crate::witness::{InstrumentCx, InstrumentationMechanism, SizeExpr, Source, Witness};

/// The SoftBound mechanism.
#[derive(Debug, Default)]
pub struct SoftBoundMech;

impl SoftBoundMech {
    fn call(name: &str, args: Vec<Operand>, ret: Type) -> InstrKind {
        InstrKind::Call { callee: name.to_string(), args, ret }
    }

    /// Materializes `base + size` as a bound pointer right after `anchor`.
    fn bound_after(
        &self,
        cx: &mut InstrumentCx<'_>,
        anchor: InstrId,
        base: &Operand,
        size: &SizeExpr,
    ) -> Operand {
        let (size_op, anchor) = match size {
            SizeExpr::Direct(op) => (op.clone(), anchor),
            SizeExpr::Product(a, b) => {
                let mul = cx.insert_witness_after(
                    anchor,
                    InstrKind::Bin {
                        op: BinOp::Mul,
                        ty: Type::I64,
                        lhs: a.clone(),
                        rhs: b.clone(),
                    },
                );
                (cx.result_of(mul), mul)
            }
        };
        let gep = cx.insert_witness_after(
            anchor,
            InstrKind::Gep { elem_ty: Type::I8, base: base.clone(), indices: vec![size_op] },
        );
        cx.result_of(gep)
    }
}

impl InstrumentationMechanism for SoftBoundMech {
    fn arity(&self) -> usize {
        2
    }

    /// Appendix-B bounds narrowing: when enabled and the `gep` addresses a
    /// struct member (≥ 2 indices with a constant member step into a struct
    /// type), the witness becomes `[member_addr, member_addr + sizeof(member)]`
    /// instead of the whole object's bounds. The appendix's warning applies:
    /// `&P == &P.x` traversal idioms now report false positives.
    fn witness_for_gep(
        &mut self,
        cx: &mut InstrumentCx<'_>,
        gep: mir::ids::InstrId,
        _inherited: &Witness,
    ) -> Option<Witness> {
        if !cx.minfo.config.sb_narrow_member_bounds {
            return None;
        }
        let (elem_ty, indices) = match &cx.func.instrs[gep.index()].kind {
            InstrKind::Gep { elem_ty, indices, .. } => (elem_ty.clone(), indices.clone()),
            _ => return None,
        };
        if indices.len() < 2 || !matches!(elem_ty, Type::Struct(_)) {
            return None;
        }
        // Walk the aggregate steps to the addressed member's type.
        let mut cur = elem_ty;
        for idx in &indices[1..] {
            let i = idx.as_const_int()?;
            cur = match &cur {
                Type::Struct(fields) => fields.get(i as usize)?.clone(),
                Type::Array(elem, _) => (**elem).clone(),
                _ => return None,
            };
        }
        let base = cx.result_of(gep);
        let size = SizeExpr::Direct(Operand::i64(cur.size_of().max(1) as i64));
        let bound = self.bound_after(cx, gep, &base, &size);
        cx.stats.checks_narrowed += 1;
        Some(Witness(vec![base, bound]))
    }

    fn witness_for_source(&mut self, cx: &mut InstrumentCx<'_>, src: &Source) -> Witness {
        match src {
            Source::Alloca { instr } => {
                let base = cx.result_of(*instr);
                let (ty, count) = match &cx.func.instrs[instr.index()].kind {
                    InstrKind::Alloca { ty, count } => (ty.clone(), count.clone()),
                    other => unreachable!("alloca source is {other:?}"),
                };
                let elem = ty.size_of().max(1);
                let size = match count.as_const_int() {
                    Some(n) => SizeExpr::Direct(Operand::i64(elem as i64 * n)),
                    None => SizeExpr::Product(Operand::i64(elem as i64), count),
                };
                let bound = self.bound_after(cx, *instr, &base, &size);
                Witness(vec![base, bound])
            }
            Source::HeapAlloc { instr, size } => {
                let base = cx.result_of(*instr);
                let bound = self.bound_after(cx, *instr, &base, size);
                Witness(vec![base, bound])
            }
            Source::Global(gid) => {
                let meta = &cx.minfo.globals[gid.index()];
                let base = Operand::GlobalAddr(*gid);
                if meta.size_unknown {
                    // §4.3: external array without size information.
                    if cx.minfo.config.sb_size_zero_wide_upper {
                        let wide = cx.wide_ptr();
                        Witness(vec![base, wide])
                    } else {
                        Witness(vec![Operand::Null, Operand::Null])
                    }
                } else {
                    let gep = cx.insert_at_entry(InstrKind::Gep {
                        elem_ty: Type::I8,
                        base: base.clone(),
                        indices: vec![Operand::i64(meta.size as i64)],
                    });
                    let bound = cx.result_of(gep);
                    Witness(vec![base, bound])
                }
            }
            Source::LoadedFromMemory { instr, addr } => {
                cx.stats.metadata_loads_placed += 2;
                let b = cx.insert_witness_after(
                    *instr,
                    Self::call(h::SB_TRIE_GET_BASE, vec![addr.clone()], Type::Ptr),
                );
                let bd = cx.insert_witness_after(
                    b,
                    Self::call(h::SB_TRIE_GET_BOUND, vec![addr.clone()], Type::Ptr),
                );
                Witness(vec![cx.result_of(b), cx.result_of(bd)])
            }
            Source::CallResult { instr, .. } => {
                // Bounds are read from the shadow-stack return slot. For
                // uninstrumented callees these are stale or NULL — the §4.3
                // failure mode, reproduced faithfully.
                cx.stats.metadata_loads_placed += 2;
                let b = cx.insert_witness_after(
                    *instr,
                    Self::call(h::SB_SS_GET_RET_BASE, vec![], Type::Ptr),
                );
                let bd = cx
                    .insert_witness_after(b, Self::call(h::SB_SS_GET_RET_BOUND, vec![], Type::Ptr));
                Witness(vec![cx.result_of(b), cx.result_of(bd)])
            }
            Source::Param(i) => {
                let slot = crate::witness::ModuleInfo::ptr_arg_slot(
                    &cx.func.params.iter().map(|p| p.ty.clone()).collect::<Vec<_>>(),
                    *i,
                ) as i64;
                cx.stats.metadata_loads_placed += 2;
                let b = cx.insert_at_entry(Self::call(
                    h::SB_SS_GET_ARG_BASE,
                    vec![Operand::i64(slot)],
                    Type::Ptr,
                ));
                let bd = cx.insert_at_entry(Self::call(
                    h::SB_SS_GET_ARG_BOUND,
                    vec![Operand::i64(slot)],
                    Type::Ptr,
                ));
                Witness(vec![cx.result_of(b), cx.result_of(bd)])
            }
            Source::IntToPtr { .. } => {
                // §4.4: pointers minted from integers.
                if cx.minfo.config.sb_inttoptr_wide_bounds {
                    let wide = cx.wide_ptr();
                    Witness(vec![Operand::Null, wide])
                } else {
                    Witness(vec![Operand::Null, Operand::Null])
                }
            }
            Source::NullPtr => Witness(vec![Operand::Null, Operand::Null]),
            Source::Opaque => {
                let wide = cx.wide_ptr();
                Witness(vec![Operand::Null, wide])
            }
        }
    }
}

impl MechanismLowering for SoftBoundMech {
    fn prepare_function(&mut self, _cx: &mut InstrumentCx<'_>) {}

    fn emit_check(&mut self, cx: &mut InstrumentCx<'_>, target: &CheckTarget, witness: &Witness) {
        let site = cx.register_site(
            mir::srcloc::SiteKind::Deref,
            target.is_store,
            Some(target.width),
            Some(target.instr),
            &target.ptr,
        );
        cx.insert_check(
            target,
            Self::call(
                h::SB_CHECK,
                vec![
                    target.ptr.clone(),
                    Operand::i64(target.width as i64),
                    witness.0[0].clone(),
                    witness.0[1].clone(),
                    site,
                ],
                Type::Void,
            ),
        );
        cx.stats.checks_placed += 1;
    }

    fn emit_store_escape(
        &mut self,
        cx: &mut InstrumentCx<'_>,
        store: InstrId,
        _value: &Operand,
        addr: &Operand,
        witness: &Witness,
    ) {
        // Track the stored pointer's bounds in the trie, keyed by the
        // stored-at address ([24, Fig. 3]).
        cx.insert_after_witnesses(
            store,
            Self::call(
                h::SB_TRIE_SET,
                vec![addr.clone(), witness.0[0].clone(), witness.0[1].clone()],
                Type::Void,
            ),
        );
        cx.stats.metadata_stores_placed += 1;
        cx.stats.invariants_placed += 1;
    }

    fn emit_return_escape(
        &mut self,
        cx: &mut InstrumentCx<'_>,
        block: BlockId,
        _value: &Operand,
        witness: &Witness,
    ) {
        cx.insert_at_block_end(
            block,
            Self::call(
                h::SB_SS_SET_RET,
                vec![witness.0[0].clone(), witness.0[1].clone()],
                Type::Void,
            ),
        );
        cx.stats.metadata_stores_placed += 1;
        cx.stats.invariants_placed += 1;
    }

    fn emit_cast_escape(
        &mut self,
        _cx: &mut InstrumentCx<'_>,
        _cast: InstrId,
        _value: &Operand,
        _witness: &Witness,
    ) {
        // SoftBound does not act on ptrtoint; the information loss surfaces
        // later as stale metadata (§4.4).
    }

    fn emit_call_escape(
        &mut self,
        cx: &mut InstrumentCx<'_>,
        call: InstrId,
        callee: Option<&str>,
        ptr_args: &[PtrArg],
        returns_ptr: bool,
    ) {
        // The shadow-stack protocol is only maintained for calls to
        // instrumented definitions; uninstrumented/indirect callees simply
        // do not participate (→ stale bounds, §4.3).
        let Some(name) = callee else { return };
        let Some(info) = cx.minfo.callees.get(name) else { return };
        if !info.instrumented_def {
            return;
        }
        let n_ptr = info.param_types.iter().filter(|t| t.is_ptr()).count();
        let push = cx.insert_before(
            call,
            Self::call(h::SB_SS_PUSH, vec![Operand::i64(n_ptr as i64)], Type::Void),
        );
        let mut anchor = push;
        for pa in ptr_args {
            let slot =
                crate::witness::ModuleInfo::ptr_arg_slot(&info.param_types, pa.arg_index) as i64;
            let set = cx.insert_witness_after(
                anchor,
                Self::call(
                    h::SB_SS_SET_ARG,
                    vec![Operand::i64(slot), pa.witness.0[0].clone(), pa.witness.0[1].clone()],
                    Type::Void,
                ),
            );
            cx.stats.metadata_stores_placed += 1;
            anchor = set;
        }
        let _ = returns_ptr;
        // Pop after the call and after any return-bounds reads inserted by
        // witness resolution.
        cx.insert_after_witnesses(call, Self::call(h::SB_SS_POP, vec![], Type::Void));
        cx.stats.invariants_placed += 1;
    }

    fn emit_memcpy(
        &mut self,
        cx: &mut InstrumentCx<'_>,
        instr: InstrId,
        wrapper_witnesses: Option<(&Witness, &Witness)>,
    ) {
        let (dst, src, len) = match &cx.func.instrs[instr.index()].kind {
            InstrKind::MemCpy { dst, src, len } => (dst.clone(), src.clone(), len.clone()),
            other => unreachable!("memcpy target is {other:?}"),
        };
        if let Some((wd, ws)) = wrapper_witnesses {
            // Figure 6's check_abort calls (disabled by default, §5.1.2).
            let width = len.as_const_int().map(|n| n.max(0) as u64);
            let dsite =
                cx.register_site(mir::srcloc::SiteKind::Wrapper, true, width, Some(instr), &dst);
            cx.insert_before(
                instr,
                Self::call(
                    h::SB_CHECK,
                    vec![dst.clone(), len.clone(), wd.0[0].clone(), wd.0[1].clone(), dsite],
                    Type::Void,
                ),
            );
            let ssite =
                cx.register_site(mir::srcloc::SiteKind::Wrapper, false, width, Some(instr), &src);
            cx.insert_before(
                instr,
                Self::call(
                    h::SB_CHECK,
                    vec![src.clone(), len.clone(), ws.0[0].clone(), ws.0[1].clone(), ssite],
                    Type::Void,
                ),
            );
            cx.stats.checks_placed += 2;
        }
        cx.insert_after_witnesses(
            instr,
            Self::call(h::SB_MEMCPY_META, vec![dst, src, len], Type::Void),
        );
        cx.stats.metadata_stores_placed += 1;
    }

    fn emit_memset(&mut self, cx: &mut InstrumentCx<'_>, instr: InstrId) {
        let (dst, len) = match &cx.func.instrs[instr.index()].kind {
            InstrKind::MemSet { dst, len, .. } => (dst.clone(), len.clone()),
            other => unreachable!("memset target is {other:?}"),
        };
        cx.insert_after_witnesses(instr, Self::call(h::SB_MEMSET_META, vec![dst, len], Type::Void));
        cx.stats.metadata_stores_placed += 1;
    }
}
