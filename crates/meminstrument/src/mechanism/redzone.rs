//! Red-zone (AddressSanitizer-style) lowering.
//!
//! The third mechanism, added to demonstrate the framework's extensibility
//! (the paper's stated goal for open-sourcing MemInstrument). Red-zone
//! instrumentation needs **no witnesses at all** — the check consults
//! shadow memory with nothing but the pointer value — so its witness arity
//! is zero and the shared resolver inserts no propagation code. Everything
//! else (target discovery, dominance check elimination, the pipeline
//! extension points) is reused unchanged.
//!
//! Guarantees are strictly weaker than both paper mechanisms (§2.1): only
//! accesses that *land in a poisoned zone* are caught. An overflow that
//! jumps over the red zone into a neighbouring allocation is silent.

use mir::ids::{BlockId, InstrId};
use mir::instr::{BinOp, InstrKind, Operand, Terminator};
use mir::types::Type;

use crate::hostdefs as h;
use crate::itarget::CheckTarget;
use crate::mechanism::{MechanismLowering, PtrArg};
use crate::witness::{InstrumentCx, InstrumentationMechanism, Source, Witness};

/// The red-zone mechanism.
#[derive(Debug, Default)]
pub struct RedZoneMech;

impl RedZoneMech {
    fn call(name: &str, args: Vec<Operand>, ret: Type) -> InstrKind {
        InstrKind::Call { callee: name.to_string(), args, ret }
    }
}

impl InstrumentationMechanism for RedZoneMech {
    fn arity(&self) -> usize {
        0
    }

    fn witness_for_source(&mut self, _cx: &mut InstrumentCx<'_>, _src: &Source) -> Witness {
        Witness(vec![])
    }
}

impl MechanismLowering for RedZoneMech {
    fn prepare_function(&mut self, cx: &mut InstrumentCx<'_>) {
        // Like ASan, stack objects are moved into red-zone-guarded slabs.
        // (Identical scheme to the Low-Fat stack replacement.)
        let mut replaced_any = false;
        for bi in 0..cx.func.blocks.len() {
            let ids = cx.func.blocks[bi].instrs.clone();
            for iid in ids {
                let (ty, count) = match &cx.func.instrs[iid.index()].kind {
                    InstrKind::Alloca { ty, count } => (ty.clone(), count.clone()),
                    _ => continue,
                };
                let elem = ty.size_of().max(1);
                let size_op = match count.as_const_int() {
                    Some(n) => Operand::i64(elem as i64 * n),
                    None => {
                        let mul = cx.insert_before(
                            iid,
                            InstrKind::Bin {
                                op: BinOp::Mul,
                                ty: Type::I64,
                                lhs: Operand::i64(elem as i64),
                                rhs: count,
                            },
                        );
                        cx.result_of(mul)
                    }
                };
                cx.func.instrs[iid.index()].kind =
                    Self::call(h::RZ_STACK_ALLOC, vec![size_op], Type::Ptr);
                cx.stats.allocas_replaced += 1;
                replaced_any = true;
            }
        }
        if !replaced_any {
            return;
        }
        let save = cx.insert_at_entry(Self::call(h::RZ_STACK_SAVE, vec![], Type::I64));
        let token = cx.result_of(save);
        for bi in 0..cx.func.blocks.len() {
            if matches!(cx.func.blocks[bi].term, Terminator::Ret(_)) {
                cx.insert_at_block_end(
                    BlockId::new(bi),
                    Self::call(h::RZ_STACK_RESTORE, vec![token.clone()], Type::Void),
                );
            }
        }
    }

    fn emit_check(&mut self, cx: &mut InstrumentCx<'_>, target: &CheckTarget, _witness: &Witness) {
        let site = cx.register_site(
            mir::srcloc::SiteKind::Deref,
            target.is_store,
            Some(target.width),
            Some(target.instr),
            &target.ptr,
        );
        cx.insert_check(
            target,
            Self::call(
                h::RZ_CHECK,
                vec![target.ptr.clone(), Operand::i64(target.width as i64), site],
                Type::Void,
            ),
        );
        cx.stats.checks_placed += 1;
    }

    // Red zones track no metadata and enforce no escape invariant: all the
    // remaining hooks are no-ops.

    fn emit_store_escape(
        &mut self,
        _cx: &mut InstrumentCx<'_>,
        _store: InstrId,
        _value: &Operand,
        _addr: &Operand,
        _witness: &Witness,
    ) {
    }

    fn emit_return_escape(
        &mut self,
        _cx: &mut InstrumentCx<'_>,
        _block: BlockId,
        _value: &Operand,
        _witness: &Witness,
    ) {
    }

    fn emit_cast_escape(
        &mut self,
        _cx: &mut InstrumentCx<'_>,
        _cast: InstrId,
        _value: &Operand,
        _witness: &Witness,
    ) {
    }

    fn emit_call_escape(
        &mut self,
        _cx: &mut InstrumentCx<'_>,
        _call: InstrId,
        _callee: Option<&str>,
        _ptr_args: &[PtrArg],
        _returns_ptr: bool,
    ) {
    }

    fn emit_memcpy(
        &mut self,
        cx: &mut InstrumentCx<'_>,
        instr: InstrId,
        _wrapper_witnesses: Option<(&Witness, &Witness)>,
    ) {
        // ASan's interceptors check both ranges against shadow memory.
        let (dst, src, len) = match &cx.func.instrs[instr.index()].kind {
            InstrKind::MemCpy { dst, src, len } => (dst.clone(), src.clone(), len.clone()),
            other => unreachable!("memcpy target is {other:?}"),
        };
        let width = len.as_const_int().map(|n| n.max(0) as u64);
        let dsite =
            cx.register_site(mir::srcloc::SiteKind::Wrapper, true, width, Some(instr), &dst);
        cx.insert_before(instr, Self::call(h::RZ_CHECK, vec![dst, len.clone(), dsite], Type::Void));
        let ssite =
            cx.register_site(mir::srcloc::SiteKind::Wrapper, false, width, Some(instr), &src);
        cx.insert_before(instr, Self::call(h::RZ_CHECK, vec![src, len, ssite], Type::Void));
        cx.stats.checks_placed += 2;
    }

    fn emit_memset(&mut self, cx: &mut InstrumentCx<'_>, instr: InstrId) {
        let (dst, len) = match &cx.func.instrs[instr.index()].kind {
            InstrKind::MemSet { dst, len, .. } => (dst.clone(), len.clone()),
            other => unreachable!("memset target is {other:?}"),
        };
        let width = len.as_const_int().map(|n| n.max(0) as u64);
        let site = cx.register_site(mir::srcloc::SiteKind::Wrapper, true, width, Some(instr), &dst);
        cx.insert_before(instr, Self::call(h::RZ_CHECK, vec![dst, len, site], Type::Void));
        cx.stats.checks_placed += 1;
    }
}
