//! Witness resolution: the shared SSA plumbing of §3.1.
//!
//! A *witness* is the set of SSA values that carry a pointer's bounds
//! information to the places that need it — `(base, bound)` for SoftBound,
//! the allocation base for Low-Fat Pointers. The framework handles the
//! propagation rows of Table 1 that are identical for all mechanisms
//! (`phi` → companion phis, `select` → companion selects, `gep` → inherit
//! from the source pointer) and classifies every other pointer origin into
//! a [`Source`] that the mechanism materializes.

use std::collections::{BTreeMap, HashMap, HashSet};

use mir::function::ValueDef;
use mir::ids::{BlockId, GlobalId, InstrId, ValueId};
use mir::instr::{CastOp, InstrKind, Operand};
use mir::module::Module;
use mir::srcloc::{AllocKind, AllocSite, CheckSite, SiteKind};
use mir::types::Type;
use mir::Function;

use crate::config::MiConfig;
use crate::stats::InstrStats;

/// A resolved witness: one operand per component (SoftBound: `[base,
/// bound]`; Low-Fat: `[base]`).
#[derive(Clone, PartialEq, Debug)]
pub struct Witness(pub Vec<Operand>);

impl Witness {
    /// The single component of an arity-1 witness.
    pub fn base(&self) -> &Operand {
        &self.0[0]
    }
}

/// How the size of a heap allocation is computed at the allocation site.
#[derive(Clone, Debug)]
pub enum SizeExpr {
    /// The size is this operand (e.g. `malloc(size)`).
    Direct(Operand),
    /// The size is the product of two operands (e.g. `calloc(n, size)`).
    Product(Operand, Operand),
}

/// A true pointer source (everything the shared plumbing cannot inherit).
#[derive(Clone, Debug)]
pub enum Source {
    /// A stack allocation (only reaches the mechanism when allocas are not
    /// replaced, i.e. under SoftBound).
    Alloca {
        /// The `alloca` instruction.
        instr: InstrId,
    },
    /// A heap (or low-fat stack) allocation with IR-visible size.
    HeapAlloc {
        /// The allocation call.
        instr: InstrId,
        /// How to compute the allocation size.
        size: SizeExpr,
    },
    /// The address of a global variable.
    Global(GlobalId),
    /// A pointer loaded from memory ("rely on invariant", Table 1).
    LoadedFromMemory {
        /// The `load` instruction.
        instr: InstrId,
        /// The address the pointer was loaded from.
        addr: Operand,
    },
    /// A pointer returned by a call that is not a known allocator.
    CallResult {
        /// The call instruction.
        instr: InstrId,
        /// Callee name (`None` for indirect calls).
        callee: Option<String>,
    },
    /// A pointer-typed function parameter (`index` into `params`).
    Param(usize),
    /// A pointer minted from an integer (§4.4).
    IntToPtr {
        /// The cast instruction.
        instr: InstrId,
    },
    /// The null pointer.
    NullPtr,
    /// Anything else (undef, function addresses).
    Opaque,
}

/// Per-global metadata the instrumentation needs (no initializer data).
#[derive(Clone, Debug)]
pub struct GlobalMeta {
    /// Symbol name.
    pub name: String,
    /// Size in bytes as visible in this TU.
    pub size: u64,
    /// `extern` declaration without size information (§4.3).
    pub size_unknown: bool,
    /// Belongs to an uninstrumented library (§4.3).
    pub uninstrumented_lib: bool,
}

/// Per-callee info for the call protocol.
#[derive(Clone, Debug)]
pub struct CalleeInfo {
    /// Defined in this module and instrumented (maintains the protocol).
    pub instrumented_def: bool,
    /// Parameter types.
    pub param_types: Vec<Type>,
    /// Whether the callee returns a pointer.
    pub ret_ptr: bool,
}

/// Module-level context shared by all per-function instrumentations.
#[derive(Clone, Debug)]
pub struct ModuleInfo {
    /// Global metadata, indexed by [`GlobalId`].
    pub globals: Vec<GlobalMeta>,
    /// Callee info by name.
    pub callees: BTreeMap<String, CalleeInfo>,
    /// The configuration.
    pub config: MiConfig,
}

impl ModuleInfo {
    /// Collects module info before any function is mutated.
    pub fn collect(m: &Module, config: &MiConfig) -> ModuleInfo {
        let globals = m
            .globals
            .iter()
            .map(|g| GlobalMeta {
                name: g.name.clone(),
                size: g.size(),
                size_unknown: g.attrs.size_unknown,
                uninstrumented_lib: g.attrs.uninstrumented_lib,
            })
            .collect();
        let callees = m
            .functions
            .iter()
            .map(|f| {
                (
                    f.name.clone(),
                    CalleeInfo {
                        instrumented_def: !f.is_declaration
                            && !f.attrs.uninstrumented
                            && !f.attrs.no_instrument,
                        param_types: f.params.iter().map(|p| p.ty.clone()).collect(),
                        ret_ptr: f.ret_ty == Type::Ptr,
                    },
                )
            })
            .collect();
        ModuleInfo { globals, callees, config: config.clone() }
    }

    /// 1-based shadow-stack slot of pointer parameter `param_idx` given the
    /// full parameter type list (slot numbering counts pointer params only,
    /// matching Figure 6's `lookup_bs(1)` convention).
    pub fn ptr_arg_slot(param_types: &[Type], param_idx: usize) -> usize {
        1 + param_types[..param_idx].iter().filter(|t| t.is_ptr()).count()
    }
}

/// Whether `name` is part of the instrumentation runtime (never itself a
/// target of instrumentation).
pub fn is_runtime_callee(name: &str) -> bool {
    name.starts_with("__sb_") || name.starts_with("__lf_") || name.starts_with("__rz_")
}

/// Whether `name` is a known allocator whose result bounds come from the
/// IR-visible size argument.
pub fn allocator_size_expr(name: &str, args: &[Operand]) -> Option<SizeExpr> {
    match name {
        "malloc" | "__lf_stack_alloc" | "__rz_stack_alloc" => {
            Some(SizeExpr::Direct(args[0].clone()))
        }
        "calloc" => Some(SizeExpr::Product(args[0].clone(), args[1].clone())),
        _ => None,
    }
}

/// Per-function instrumentation context: the function being rewritten plus
/// insertion helpers and bookkeeping.
pub struct InstrumentCx<'a> {
    /// The function being instrumented.
    pub func: &'a mut Function,
    /// Module-level info.
    pub minfo: &'a ModuleInfo,
    /// Statistics sink.
    pub stats: &'a mut InstrStats,
    /// Instructions inserted as witness materialization (used to order
    /// protocol code after them).
    pub witness_instrs: HashSet<InstrId>,
    /// Module-wide check-site table (indexed by the trailing site-id
    /// argument of every check/invariant call).
    pub sites: &'a mut Vec<CheckSite>,
    cache: HashMap<CacheKey, Witness>,
    entry_cursor: usize,
    wide_ptr: Option<Operand>,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum CacheKey {
    Val(ValueId),
    Global(GlobalId),
    Null,
    Opaque,
}

impl<'a> InstrumentCx<'a> {
    /// Creates a context for one function. `sites` is the module-wide
    /// check-site table; new sites are appended and referenced by index.
    pub fn new(
        func: &'a mut Function,
        minfo: &'a ModuleInfo,
        stats: &'a mut InstrStats,
        sites: &'a mut Vec<CheckSite>,
    ) -> Self {
        InstrumentCx {
            func,
            minfo,
            stats,
            witness_instrs: HashSet::new(),
            sites,
            cache: HashMap::new(),
            entry_cursor: 0,
            wide_ptr: None,
        }
    }

    /// Finds the block and position of a (linked) instruction.
    ///
    /// # Panics
    ///
    /// Panics if `iid` is not linked into any block.
    pub fn position_of(&self, iid: InstrId) -> (BlockId, usize) {
        for (bid, block) in self.func.iter_blocks() {
            if let Some(pos) = block.instrs.iter().position(|&i| i == iid) {
                return (bid, pos);
            }
        }
        panic!("instruction {iid} not linked");
    }

    /// Result operand of an instruction.
    pub fn result_of(&self, iid: InstrId) -> Operand {
        Operand::Val(self.func.instr_result(iid).expect("instruction has a result"))
    }

    /// Inserts `kind` immediately before `anchor`, returning the new id.
    /// The new instruction inherits `anchor`'s source location, so check
    /// calls report the line of the access they guard.
    pub fn insert_before(&mut self, anchor: InstrId, kind: InstrKind) -> InstrId {
        let (bid, pos) = self.position_of(anchor);
        let loc = self.func.instrs[anchor.index()].loc;
        let id = self.func.insert_instr(bid, pos, kind);
        self.func.set_instr_loc(id, loc);
        self.bump_entry_cursor(bid, pos);
        id
    }

    /// Inserts `kind` immediately after `anchor` (marked as witness code,
    /// inheriting `anchor`'s source location).
    pub fn insert_witness_after(&mut self, anchor: InstrId, kind: InstrKind) -> InstrId {
        let (bid, pos) = self.position_of(anchor);
        let loc = self.func.instrs[anchor.index()].loc;
        let id = self.func.insert_instr(bid, pos + 1, kind);
        self.func.set_instr_loc(id, loc);
        self.witness_instrs.insert(id);
        self.bump_entry_cursor(bid, pos + 1);
        id
    }

    /// Inserts `kind` after `anchor`, skipping any witness instructions
    /// already inserted after it (used for shadow-stack pops that must run
    /// after the return-bounds reads).
    pub fn insert_after_witnesses(&mut self, anchor: InstrId, kind: InstrKind) -> InstrId {
        let (bid, mut pos) = self.position_of(anchor);
        let block = &self.func.blocks[bid.index()];
        pos += 1;
        while pos < block.instrs.len() && self.witness_instrs.contains(&block.instrs[pos]) {
            pos += 1;
        }
        let loc = self.func.instrs[anchor.index()].loc;
        let id = self.func.insert_instr(bid, pos, kind);
        self.func.set_instr_loc(id, loc);
        self.bump_entry_cursor(bid, pos);
        id
    }

    /// Inserts `kind` at the current entry-block cursor (start of the
    /// function, maintaining insertion order). Marked as witness code.
    pub fn insert_at_entry(&mut self, kind: InstrKind) -> InstrId {
        let id = self.func.insert_instr(BlockId::new(0), self.entry_cursor, kind);
        self.entry_cursor += 1;
        self.witness_instrs.insert(id);
        id
    }

    /// Inserts `kind` at the end of `block`, before the terminator.
    pub fn insert_at_block_end(&mut self, block: BlockId, kind: InstrKind) -> InstrId {
        let pos = self.func.blocks[block.index()].instrs.len();
        self.func.insert_instr(block, pos, kind)
    }

    /// Inserts a check call `kind` for `target` at the target's placement:
    /// immediately before the guarded access, or (for checks the loop
    /// optimizer hoisted/widened) at the end of the designated block. The
    /// call inherits the guarded access's source location either way, so
    /// violation reports name the access even for preheader checks.
    pub fn insert_check(
        &mut self,
        target: &crate::itarget::CheckTarget,
        kind: InstrKind,
    ) -> InstrId {
        match target.placement {
            crate::itarget::CheckPlacement::AtAccess => self.insert_before(target.instr, kind),
            crate::itarget::CheckPlacement::BlockEnd(b) => {
                let loc = self.func.instrs[target.instr.index()].loc;
                let id = self.insert_at_block_end(b, kind);
                self.func.set_instr_loc(id, loc);
                id
            }
        }
    }

    /// Inserts a phi companion after the existing phis of `block`.
    pub fn insert_phi_companion(&mut self, block: BlockId, kind: InstrKind) -> InstrId {
        let pos = self.first_non_phi(block);
        let id = self.func.insert_instr(block, pos, kind);
        self.witness_instrs.insert(id);
        self.bump_entry_cursor(block, pos);
        id
    }

    fn first_non_phi(&self, block: BlockId) -> usize {
        let b = &self.func.blocks[block.index()];
        b.instrs
            .iter()
            .position(|&i| !matches!(self.func.instrs[i.index()].kind, InstrKind::Phi { .. }))
            .unwrap_or(b.instrs.len())
    }

    fn bump_entry_cursor(&mut self, bid: BlockId, pos: usize) {
        if bid == BlockId::new(0) && pos < self.entry_cursor {
            self.entry_cursor += 1;
        }
    }

    /// A function-wide "wide pointer" operand (`inttoptr -1`), materialized
    /// once at entry on first use. Used for wide upper bounds.
    pub fn wide_ptr(&mut self) -> Operand {
        if let Some(w) = &self.wide_ptr {
            return w.clone();
        }
        let id = self.insert_at_entry(InstrKind::Cast {
            op: CastOp::IntToPtr,
            value: Operand::i64(-1),
            from: Type::I64,
            to: Type::Ptr,
        });
        let op = self.result_of(id);
        self.wide_ptr = Some(op.clone());
        op
    }

    /// Looks up a cached witness (used by tests).
    pub fn cached(&self, v: ValueId) -> Option<&Witness> {
        self.cache.get(&CacheKey::Val(v))
    }

    /// Registers a check site anchored at `anchor` (the guarded access or
    /// escape instruction; `None` for block-terminator escapes) and returns
    /// the site-id operand to append to the runtime call.
    pub fn register_site(
        &mut self,
        kind: SiteKind,
        is_store: bool,
        width: Option<u64>,
        anchor: Option<InstrId>,
        ptr: &Operand,
    ) -> Operand {
        let line = anchor.and_then(|a| self.func.instrs[a.index()].loc).map(|l| l.line);
        let alloc = self.derive_alloc_site(ptr);
        let id = self.sites.len();
        self.sites.push(CheckSite {
            func: self.func.name.clone(),
            kind,
            is_store,
            width,
            line,
            alloc,
        });
        Operand::i64(id as i64)
    }

    /// Statically derives the allocation site of `op` by walking `gep`s and
    /// bitcasts back to a visible allocation (the provenance ASan prints as
    /// "allocated by thread T0 here"). Returns `None` when the chain leaves
    /// the function (params, loads, opaque calls, phis).
    pub fn derive_alloc_site(&self, op: &Operand) -> Option<AllocSite> {
        let mut cur = op.clone();
        // SSA defs cannot cycle except through phis, which terminate the
        // walk below; the bound is belt-and-braces.
        for _ in 0..64 {
            match cur {
                Operand::GlobalAddr(g) => {
                    let meta = &self.minfo.globals[g.index()];
                    return Some(AllocSite {
                        kind: AllocKind::Global,
                        line: None,
                        name: Some(meta.name.clone()),
                        size: if meta.size_unknown { None } else { Some(meta.size) },
                    });
                }
                Operand::Val(v) => match self.func.values[v.index()].def {
                    ValueDef::Instr(iid) => {
                        let instr = &self.func.instrs[iid.index()];
                        match &instr.kind {
                            InstrKind::Gep { base, .. } => cur = base.clone(),
                            InstrKind::Cast { op: CastOp::Bitcast, value, .. } => {
                                cur = value.clone()
                            }
                            InstrKind::Alloca { ty, count } => {
                                let size = count
                                    .as_const_int()
                                    .map(|n| ty.size_of().max(1) * n.max(0) as u64);
                                return Some(AllocSite {
                                    kind: AllocKind::Stack,
                                    line: instr.loc.map(|l| l.line),
                                    name: None,
                                    size,
                                });
                            }
                            InstrKind::Call { callee, args, .. } => {
                                let kind = match callee.as_str() {
                                    "malloc" | "calloc" => AllocKind::Heap,
                                    crate::hostdefs::LF_STACK_ALLOC
                                    | crate::hostdefs::RZ_STACK_ALLOC => AllocKind::Stack,
                                    _ => return None,
                                };
                                let size = match callee.as_str() {
                                    "calloc" => {
                                        match (args[0].as_const_int(), args[1].as_const_int()) {
                                            (Some(a), Some(b)) => Some((a * b).max(0) as u64),
                                            _ => None,
                                        }
                                    }
                                    _ => args
                                        .first()
                                        .and_then(|a| a.as_const_int())
                                        .map(|n| n.max(0) as u64),
                                };
                                return Some(AllocSite {
                                    kind,
                                    line: instr.loc.map(|l| l.line),
                                    name: None,
                                    size,
                                });
                            }
                            _ => return None,
                        }
                    }
                    ValueDef::Param(_) => return None,
                },
                _ => return None,
            }
        }
        None
    }
}

/// The mechanism side of witness materialization and target lowering.
///
/// Implementations: [`crate::mechanism::softbound::SoftBoundMech`] and
/// [`crate::mechanism::lowfat::LowFatMech`].
pub trait InstrumentationMechanism {
    /// Number of witness components.
    fn arity(&self) -> usize;

    /// Materializes the witness for a true pointer source, inserting any
    /// code needed (adjacent to the definition / at function entry).
    fn witness_for_source(&mut self, cx: &mut InstrumentCx<'_>, src: &Source) -> Witness;

    /// Optional override for `gep` results, called with the source
    /// pointer's witness. Returning `None` (the default, and the behaviour
    /// of Table 1) inherits the source witness unchanged. SoftBound's
    /// experimental Appendix-B bounds narrowing hooks in here.
    fn witness_for_gep(
        &mut self,
        _cx: &mut InstrumentCx<'_>,
        _gep: InstrId,
        _inherited: &Witness,
    ) -> Option<Witness> {
        None
    }
}

/// Resolves the witness for pointer operand `op`, materializing code on
/// first use and caching per value. Shared plumbing (Table 1's propagation
/// rows) is handled here; true sources are delegated to `mech`.
pub fn resolve_witness(
    cx: &mut InstrumentCx<'_>,
    mech: &mut dyn InstrumentationMechanism,
    op: &Operand,
) -> Witness {
    let key = match op {
        Operand::Val(v) => CacheKey::Val(*v),
        Operand::GlobalAddr(g) => CacheKey::Global(*g),
        Operand::Null => CacheKey::Null,
        _ => CacheKey::Opaque,
    };
    if let Some(w) = cx.cache.get(&key) {
        return w.clone();
    }
    let w = match op {
        Operand::GlobalAddr(g) => mech.witness_for_source(cx, &Source::Global(*g)),
        Operand::Null => mech.witness_for_source(cx, &Source::NullPtr),
        Operand::Val(v) => return resolve_value(cx, mech, *v),
        _ => mech.witness_for_source(cx, &Source::Opaque),
    };
    cx.cache.insert(key, w.clone());
    w
}

fn resolve_value(
    cx: &mut InstrumentCx<'_>,
    mech: &mut dyn InstrumentationMechanism,
    v: ValueId,
) -> Witness {
    let key = CacheKey::Val(v);
    if let Some(w) = cx.cache.get(&key) {
        return w.clone();
    }
    let def = cx.func.values[v.index()].def;
    let w = match def {
        ValueDef::Param(i) => mech.witness_for_source(cx, &Source::Param(i as usize)),
        ValueDef::Instr(iid) => {
            let kind = cx.func.instrs[iid.index()].kind.clone();
            match kind {
                InstrKind::Gep { base, .. } => {
                    let inherited = resolve_witness(cx, mech, &base);
                    let w = mech.witness_for_gep(cx, iid, &inherited).unwrap_or(inherited);
                    cx.cache.insert(key, w.clone());
                    return w;
                }
                InstrKind::Cast { op: CastOp::Bitcast, value, to: Type::Ptr, .. } => {
                    let w = resolve_witness(cx, mech, &value);
                    cx.cache.insert(key, w.clone());
                    return w;
                }
                InstrKind::Cast { op: CastOp::IntToPtr, .. } => {
                    mech.witness_for_source(cx, &Source::IntToPtr { instr: iid })
                }
                InstrKind::Phi { ty: Type::Ptr, incoming } => {
                    return resolve_phi(cx, mech, v, iid, incoming);
                }
                InstrKind::Select { ty: Type::Ptr, cond, then_value, else_value } => {
                    let wt = resolve_witness(cx, mech, &then_value);
                    let we = resolve_witness(cx, mech, &else_value);
                    let mut parts = Vec::with_capacity(mech.arity());
                    let mut anchor = iid;
                    for k in 0..mech.arity() {
                        let sel = cx.insert_witness_after(
                            anchor,
                            InstrKind::Select {
                                ty: Type::Ptr,
                                cond: cond.clone(),
                                then_value: wt.0[k].clone(),
                                else_value: we.0[k].clone(),
                            },
                        );
                        parts.push(cx.result_of(sel));
                        anchor = sel;
                    }
                    Witness(parts)
                }
                InstrKind::Load { ty: Type::Ptr, ptr } => {
                    mech.witness_for_source(cx, &Source::LoadedFromMemory { instr: iid, addr: ptr })
                }
                InstrKind::Call { callee, args, .. } => match allocator_size_expr(&callee, &args) {
                    Some(size) => {
                        mech.witness_for_source(cx, &Source::HeapAlloc { instr: iid, size })
                    }
                    None => mech.witness_for_source(
                        cx,
                        &Source::CallResult { instr: iid, callee: Some(callee) },
                    ),
                },
                InstrKind::CallIndirect { .. } => {
                    mech.witness_for_source(cx, &Source::CallResult { instr: iid, callee: None })
                }
                InstrKind::Alloca { .. } => {
                    mech.witness_for_source(cx, &Source::Alloca { instr: iid })
                }
                _ => mech.witness_for_source(cx, &Source::Opaque),
            }
        }
    };
    cx.cache.insert(key, w.clone());
    w
}

fn resolve_phi(
    cx: &mut InstrumentCx<'_>,
    mech: &mut dyn InstrumentationMechanism,
    v: ValueId,
    phi_iid: InstrId,
    incoming: Vec<(BlockId, Operand)>,
) -> Witness {
    let (block, _) = cx.position_of(phi_iid);
    // Create placeholder companions first so cyclic phis terminate.
    let mut companion_ids = Vec::with_capacity(mech.arity());
    let mut parts = Vec::with_capacity(mech.arity());
    for _ in 0..mech.arity() {
        let placeholder: Vec<(BlockId, Operand)> =
            incoming.iter().map(|(b, _)| (*b, Operand::Undef(Type::Ptr))).collect();
        let cid =
            cx.insert_phi_companion(block, InstrKind::Phi { ty: Type::Ptr, incoming: placeholder });
        parts.push(cx.result_of(cid));
        companion_ids.push(cid);
    }
    cx.cache.insert(CacheKey::Val(v), Witness(parts.clone()));

    // Now resolve every incoming pointer and patch the companions.
    for (pred, op) in &incoming {
        let w = resolve_witness(cx, mech, op);
        for (k, &cid) in companion_ids.iter().enumerate() {
            if let InstrKind::Phi { incoming: comp_inc, .. } = &mut cx.func.instrs[cid.index()].kind
            {
                for entry in comp_inc.iter_mut() {
                    if entry.0 == *pred {
                        entry.1 = w.0[k].clone();
                    }
                }
            }
        }
    }
    Witness(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mechanism;
    use mir::builder::ModuleBuilder;

    /// A toy mechanism: arity 1, witness for every source is `null`,
    /// recording which sources it saw.
    struct ToyMech {
        seen: Vec<String>,
    }

    impl InstrumentationMechanism for ToyMech {
        fn arity(&self) -> usize {
            1
        }
        fn witness_for_source(&mut self, _cx: &mut InstrumentCx<'_>, src: &Source) -> Witness {
            self.seen.push(match src {
                Source::Alloca { .. } => "alloca".into(),
                Source::HeapAlloc { .. } => "heap".into(),
                Source::Global(_) => "global".into(),
                Source::LoadedFromMemory { .. } => "load".into(),
                Source::CallResult { .. } => "call".into(),
                Source::Param(_) => "param".into(),
                Source::IntToPtr { .. } => "inttoptr".into(),
                Source::NullPtr => "null".into(),
                Source::Opaque => "opaque".into(),
            });
            Witness(vec![Operand::Null])
        }
    }

    fn minfo() -> ModuleInfo {
        ModuleInfo {
            globals: vec![],
            callees: BTreeMap::new(),
            config: MiConfig::new(Mechanism::LowFat),
        }
    }

    #[test]
    fn gep_inherits_source_witness() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr)], Type::Void);
        let p = fb.param(0);
        let q = fb.gep(Type::I64, p, vec![Operand::i64(3)]);
        let r = fb.gep(Type::I8, q.clone(), vec![Operand::i64(1)]);
        fb.store(Type::I8, Operand::ConstInt { ty: Type::I8, value: 0 }, r.clone());
        fb.ret(None);
        fb.finish();
        let mut m = mb.finish();
        let info = minfo();
        let mut stats = InstrStats::default();
        let f = m.function_by_name_mut("f").unwrap();
        let mut sites = Vec::new();
        let mut cx = InstrumentCx::new(f, &info, &mut stats, &mut sites);
        let mut mech = ToyMech { seen: vec![] };
        let w1 = resolve_witness(&mut cx, &mut mech, &r);
        let w2 = resolve_witness(&mut cx, &mut mech, &q);
        assert_eq!(w1, w2);
        assert_eq!(mech.seen, vec!["param".to_string()], "one source resolution only");
    }

    #[test]
    fn phi_cycle_terminates_and_builds_companion() {
        let src = r#"
            define i64 @f(ptr %p, i64 %n) {
            entry:
              br header
            header:
              %cur = phi ptr, [entry: %p], [body: %nextp]
              %i = phi i64, [entry: i64 0], [body: %nexti]
              %c = icmp slt i64, %i, %n
              condbr %c, body, exit
            body:
              %nextp = gep i64, %cur, [i64 1]
              %nexti = add i64, %i, i64 1
              br header
            exit:
              %v = load i64, %cur
              ret %v
            }
        "#;
        let mut m = mir::parser::parse_module(src).unwrap();
        let info = minfo();
        let mut stats = InstrStats::default();
        let f = m.function_by_name_mut("f").unwrap();
        // Find %cur's operand: first phi in header.
        let header = BlockId::new(1);
        let phi_iid = f.blocks[header.index()].instrs[0];
        let cur = Operand::Val(f.instr_result(phi_iid).unwrap());
        let mut sites = Vec::new();
        let mut cx = InstrumentCx::new(f, &info, &mut stats, &mut sites);
        let mut mech = ToyMech { seen: vec![] };
        let w = resolve_witness(&mut cx, &mut mech, &cur);
        // The witness is a companion phi in the header.
        let wv = w.0[0].as_value().expect("companion phi value");
        assert!(cx.cached(wv).is_none(), "companion itself not a resolved pointer");
        // Param was the only true source.
        assert_eq!(mech.seen, vec!["param".to_string()]);
        drop(cx);
        mir::verifier::verify_module(&m).unwrap();
    }

    #[test]
    fn select_companions_inserted_after_select() {
        let src = r#"
            define i64 @f(ptr %p, ptr %q, i1 %c) {
            entry:
              %s = select ptr, %c, %p, %q
              %v = load i64, %s
              ret %v
            }
        "#;
        let mut m = mir::parser::parse_module(src).unwrap();
        let info = minfo();
        let mut stats = InstrStats::default();
        let f = m.function_by_name_mut("f").unwrap();
        let sel_iid = f.blocks[0].instrs[0];
        let s = Operand::Val(f.instr_result(sel_iid).unwrap());
        let mut sites = Vec::new();
        let mut cx = InstrumentCx::new(f, &info, &mut stats, &mut sites);
        let mut mech = ToyMech { seen: vec![] };
        let w = resolve_witness(&mut cx, &mut mech, &s);
        assert_eq!(w.0.len(), 1);
        assert_eq!(mech.seen.len(), 2, "both arms resolved");
        drop(cx);
        mir::verifier::verify_module(&m).unwrap();
    }

    #[test]
    fn ptr_arg_slot_counts_pointer_params_only() {
        let tys = vec![Type::I64, Type::Ptr, Type::F64, Type::Ptr];
        assert_eq!(ModuleInfo::ptr_arg_slot(&tys, 1), 1);
        assert_eq!(ModuleInfo::ptr_arg_slot(&tys, 3), 2);
    }

    #[test]
    fn runtime_and_allocator_classification() {
        assert!(is_runtime_callee("__sb_check"));
        assert!(is_runtime_callee("__lf_base"));
        assert!(!is_runtime_callee("malloc"));
        assert!(allocator_size_expr("malloc", &[Operand::i64(8)]).is_some());
        assert!(allocator_size_expr("calloc", &[Operand::i64(2), Operand::i64(8)]).is_some());
        assert!(allocator_size_expr("print_i64", &[Operand::i64(0)]).is_none());
    }
}
