//! The cross-mechanism differential oracle.
//!
//! Every fuzz case runs a safe program and its mutant through a
//! 14-configuration matrix via the typed job API ([`bench::job`]) with
//! one case-local artifact store sharing the frontend per program:
//!
//! * baseline at `O0` and `O3`,
//! * SoftBound, Low-Fat, and RedZone, each at `O0` and at all three
//!   `O3` extension points.
//!
//! The oracle demands:
//!
//! * **Safe program**: every configuration completes and prints
//!   byte-identical output — instrumentation and optimization may never
//!   change a correct program's answers.
//! * **Mutant**: each mechanism behaves exactly as the guarantee
//!   matrix ([`crate::mutate`]) predicts, in *all four* of its
//!   configurations. `Caught` means a violation report attributed to
//!   that mechanism; `Missed` means no violation report (the access may
//!   still segfault — a raw fault is the documented guarantee gap, not
//!   a report). Baselines must never report violations.
//!
//! A prediction the implementation does not meet is a **false
//! negative** (guarantee broken); a violation report the model says
//! cannot happen is a **false positive** (usability broken). Both
//! surface as [`check_pair`] errors.

use std::collections::HashMap;

use bench::driver::{CellOk, CellTrap, Driver, JobConfig, Program, TrapKind};
use bench::job::{self, JobCtl, JobOutcome};
use bench::store::ArtifactStore;
use meminstrument::Mechanism;
use memvm::{VmBackend, VmConfig};
use mir::pipeline::{ExtensionPoint, OptLevel};

use crate::ast::FuzzProgram;
use crate::mutate::Expect;

/// All three mechanisms, in matrix order.
pub const MECHS: [Mechanism; 3] = [Mechanism::SoftBound, Mechanism::LowFat, Mechanism::RedZone];

/// The 14-configuration oracle matrix.
pub fn matrix_configs() -> Vec<JobConfig> {
    let mut configs = vec![JobConfig::baseline().opt_level(OptLevel::O0), JobConfig::baseline()];
    for mech in MECHS {
        configs.push(JobConfig::mechanism(mech).opt_level(OptLevel::O0));
        for ep in ExtensionPoint::ALL {
            configs.push(JobConfig::mechanism(mech).at(ep));
        }
    }
    configs
}

/// Like [`check_pair_with`] under the default VM configuration.
pub fn check_pair(safe: &FuzzProgram, mutant: &FuzzProgram, case_title: &str) -> Vec<String> {
    check_pair_with(safe, mutant, case_title, VmConfig::default())
}

/// Emits the (safe, mutant) sources and pre-validates them through the
/// frontend. `Err` carries the oracle error list for a rejected program:
/// the driver panics on compile errors, but a generator construct the
/// frontend rejects is itself a finding we want reported, not a crash.
fn case_sources(
    safe: &FuzzProgram,
    mutant: &FuzzProgram,
    case_title: &str,
) -> Result<Vec<Program>, Vec<String>> {
    let safe_src = safe.emit_c(&format!("{case_title} (safe)"));
    let mutant_src = mutant.emit_c(&format!("{case_title} (mutant)"));
    for (name, src) in [("safe", &safe_src), ("mutant", &mutant_src)] {
        if let Err(e) = cfront::compile(src) {
            return Err(vec![format!("{name}: frontend error: {e}")]);
        }
    }
    Ok(vec![
        Program { name: "safe".into(), source: safe_src },
        Program { name: "mutant".into(), source: mutant_src },
    ])
}

/// Checks one (safe, mutant) pair against the full matrix under the
/// given VM configuration. Returns the list of oracle failures; empty
/// means the case passed.
pub fn check_pair_with(
    safe: &FuzzProgram,
    mutant: &FuzzProgram,
    case_title: &str,
    vm: VmConfig,
) -> Vec<String> {
    let programs = match case_sources(safe, mutant, case_title) {
        Ok(p) => p,
        Err(errors) => return errors,
    };
    let configs = matrix_configs();
    // The matrix runs through the typed job API against a case-local
    // artifact store — the same executor the `mi serve` daemon uses, so
    // the oracle exercises the served code path on every case. Sequential
    // on purpose: case-level parallelism lives in the fuzz loop, and
    // nested thread pools would oversubscribe.
    let store = ArtifactStore::new();
    let mut errors = Vec::new();
    let mut cells: HashMap<(String, String), Result<CellOk, CellTrap>> = HashMap::new();
    for spec in job::job_matrix(&programs, &configs) {
        match job::execute(&spec, &store, vm, &JobCtl::default()) {
            Ok(JobOutcome::Cell { program, config, outcome }) => {
                cells.insert((program, config), *outcome);
            }
            Ok(other) => unreachable!("run jobs yield cells, got {other:?}"),
            Err(e) => {
                errors.push(format!("{} [{}]: job error: {e:?}", spec.source.name(), spec.config))
            }
        }
    }
    let cell_for = |program: &str, label: &str| -> Option<&Result<CellOk, CellTrap>> {
        cells.get(&(program.to_string(), label.to_string()))
    };

    // Safe program: all cells complete, byte-identical output.
    let mut reference: Option<(String, Vec<String>, Option<i64>)> = None;
    for cfg in &configs {
        let label = cfg.to_string();
        let Some(cell) = cell_for("safe", &label) else { continue };
        match cell {
            Err(t) => errors.push(format!("safe [{label}]: trapped: {}", t.message)),
            Ok(ok) => match &reference {
                None => reference = Some((label, ok.output.clone(), ok.ret)),
                Some((ref_label, ref_out, ref_ret)) => {
                    if &ok.output != ref_out {
                        errors.push(format!(
                            "safe [{label}]: output diverges from [{ref_label}]: {:?} vs {:?}",
                            ok.output, ref_out
                        ));
                    }
                    if ok.ret != *ref_ret {
                        errors.push(format!(
                            "safe [{label}]: ret {:?} != {:?} of [{ref_label}]",
                            ok.ret, ref_ret
                        ));
                    }
                }
            },
        }
    }

    // Mutant: verdicts per mechanism, in every configuration.
    let verdicts = mutant.mutation.as_ref().expect("mutant has a mutation").verdicts;
    for cfg in &configs {
        let label = cfg.to_string();
        let Some(cell) = cell_for("mutant", &label) else { continue };
        match cfg.mi_config() {
            None => {
                // Baseline: a violation report is impossible by
                // construction; anything else (clean run, segfault) is
                // fine for a program with undefined behaviour.
                if let Err(t) = cell {
                    if t.is_violation() {
                        errors.push(format!(
                            "mutant [{label}]: baseline reported a violation: {}",
                            t.message
                        ));
                    }
                }
            }
            Some(mi) => {
                let mech = mi.mechanism.name();
                match verdicts.for_mech(mech) {
                    Expect::Caught => match cell {
                        Err(t) if matches!(&t.kind, TrapKind::Violation(m) if m == mech) => {}
                        Err(t) => errors.push(format!(
                            "mutant [{label}]: false negative: expected a {mech} violation, got trap: {}",
                            t.message
                        )),
                        Ok(ok) => errors.push(format!(
                            "mutant [{label}]: false negative: expected a {mech} violation, ran clean (ret {:?})",
                            ok.ret
                        )),
                    },
                    Expect::Missed => {
                        if let Err(t) = cell {
                            if t.is_violation() {
                                errors.push(format!(
                                    "mutant [{label}]: false positive: expected a miss, got: {}",
                                    t.message
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    errors
}

/// Differential backend check: sweeps the (safe, mutant) pair through
/// the full matrix under **both** VM backends and byte-compares the
/// reports — outputs, return values, dynamic statistics, per-site
/// profiles, and trap reports (including CHECKTRAP provenance) must all
/// be identical. The fuzz loop samples this on a slice of the case
/// stream; any difference is a VM bug, independent of the guarantee
/// matrix.
pub fn backend_divergence(
    safe: &FuzzProgram,
    mutant: &FuzzProgram,
    case_title: &str,
) -> Vec<String> {
    let programs = match case_sources(safe, mutant, case_title) {
        // Frontend rejections are check_pair_with's finding to report.
        Err(_) => return Vec::new(),
        Ok(p) => p,
    };
    let run = |backend: VmBackend| {
        Driver::new(programs.clone(), matrix_configs())
            .with_jobs(1)
            .with_vm(VmConfig { backend, ..VmConfig::default() })
            .run()
            .to_json(false)
    };
    let (walk, bytecode) = (run(VmBackend::Walk), run(VmBackend::Bytecode));
    if walk == bytecode {
        return Vec::new();
    }
    // Point at the first differing line so the repro header says more
    // than "reports differ".
    let diff = walk
        .lines()
        .zip(bytecode.lines())
        .find(|(w, b)| w != b)
        .map(|(w, b)| format!("walk: {} | bytecode: {}", w.trim(), b.trim()))
        .unwrap_or_else(|| "reports differ in length".to_string());
    vec![format!("VM backend divergence: {diff}")]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shape() {
        let configs = matrix_configs();
        assert_eq!(configs.len(), 2 + 3 * 4);
        // Labels are unique (report lookups key on them).
        let labels: std::collections::BTreeSet<String> =
            configs.iter().map(|c| c.to_string()).collect();
        assert_eq!(labels.len(), configs.len());
    }
}
