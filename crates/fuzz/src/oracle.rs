//! The cross-mechanism differential oracle.
//!
//! Every fuzz case runs a safe program and its mutant through a
//! 14-configuration matrix off one shared frontend per program (the
//! PR-1 `bench::driver` caches):
//!
//! * baseline at `O0` and `O3`,
//! * SoftBound, Low-Fat, and RedZone, each at `O0` and at all three
//!   `O3` extension points.
//!
//! The oracle demands:
//!
//! * **Safe program**: every configuration completes and prints
//!   byte-identical output — instrumentation and optimization may never
//!   change a correct program's answers.
//! * **Mutant**: each mechanism behaves exactly as the guarantee
//!   matrix ([`crate::mutate`]) predicts, in *all four* of its
//!   configurations. `Caught` means a violation report attributed to
//!   that mechanism; `Missed` means no violation report (the access may
//!   still segfault — a raw fault is the documented guarantee gap, not
//!   a report). Baselines must never report violations.
//!
//! A prediction the implementation does not meet is a **false
//! negative** (guarantee broken); a violation report the model says
//! cannot happen is a **false positive** (usability broken). Both
//! surface as [`check_pair`] errors.

use bench::driver::{Driver, JobConfig, Program, TrapKind};
use meminstrument::Mechanism;
use memvm::{VmBackend, VmConfig};
use mir::pipeline::{ExtensionPoint, OptLevel};

use crate::ast::FuzzProgram;
use crate::mutate::Expect;

/// All three mechanisms, in matrix order.
pub const MECHS: [Mechanism; 3] = [Mechanism::SoftBound, Mechanism::LowFat, Mechanism::RedZone];

/// The 14-configuration oracle matrix.
pub fn matrix_configs() -> Vec<JobConfig> {
    let mut configs = vec![JobConfig::baseline().opt_level(OptLevel::O0), JobConfig::baseline()];
    for mech in MECHS {
        configs.push(JobConfig::mechanism(mech).opt_level(OptLevel::O0));
        for ep in ExtensionPoint::ALL {
            configs.push(JobConfig::mechanism(mech).at(ep));
        }
    }
    configs
}

/// Like [`check_pair_with`] under the default VM configuration.
pub fn check_pair(safe: &FuzzProgram, mutant: &FuzzProgram, case_title: &str) -> Vec<String> {
    check_pair_with(safe, mutant, case_title, VmConfig::default())
}

/// Emits the (safe, mutant) sources and pre-validates them through the
/// frontend. `Err` carries the oracle error list for a rejected program:
/// the driver panics on compile errors, but a generator construct the
/// frontend rejects is itself a finding we want reported, not a crash.
fn case_sources(
    safe: &FuzzProgram,
    mutant: &FuzzProgram,
    case_title: &str,
) -> Result<Vec<Program>, Vec<String>> {
    let safe_src = safe.emit_c(&format!("{case_title} (safe)"));
    let mutant_src = mutant.emit_c(&format!("{case_title} (mutant)"));
    for (name, src) in [("safe", &safe_src), ("mutant", &mutant_src)] {
        if let Err(e) = cfront::compile(src) {
            return Err(vec![format!("{name}: frontend error: {e}")]);
        }
    }
    Ok(vec![
        Program { name: "safe".into(), source: safe_src },
        Program { name: "mutant".into(), source: mutant_src },
    ])
}

/// Checks one (safe, mutant) pair against the full matrix under the
/// given VM configuration. Returns the list of oracle failures; empty
/// means the case passed.
pub fn check_pair_with(
    safe: &FuzzProgram,
    mutant: &FuzzProgram,
    case_title: &str,
    vm: VmConfig,
) -> Vec<String> {
    let programs = match case_sources(safe, mutant, case_title) {
        Ok(p) => p,
        Err(errors) => return errors,
    };
    let configs = matrix_configs();
    // Single-threaded driver: case-level parallelism lives in the fuzz
    // loop, and nested thread pools would oversubscribe.
    let report = Driver::new(programs, configs.clone()).with_jobs(1).with_vm(vm).run();

    let mut errors = Vec::new();

    // Safe program: all cells complete, byte-identical output.
    let mut reference: Option<(String, Vec<String>, Option<i64>)> = None;
    for cfg in &configs {
        let label = cfg.to_string();
        let cell = report.get("safe", cfg).expect("safe cell");
        match &cell.outcome {
            Err(t) => errors.push(format!("safe [{label}]: trapped: {}", t.message)),
            Ok(ok) => match &reference {
                None => reference = Some((label, ok.output.clone(), ok.ret)),
                Some((ref_label, ref_out, ref_ret)) => {
                    if &ok.output != ref_out {
                        errors.push(format!(
                            "safe [{label}]: output diverges from [{ref_label}]: {:?} vs {:?}",
                            ok.output, ref_out
                        ));
                    }
                    if ok.ret != *ref_ret {
                        errors.push(format!(
                            "safe [{label}]: ret {:?} != {:?} of [{ref_label}]",
                            ok.ret, ref_ret
                        ));
                    }
                }
            },
        }
    }

    // Mutant: verdicts per mechanism, in every configuration.
    let verdicts = mutant.mutation.as_ref().expect("mutant has a mutation").verdicts;
    for cfg in &configs {
        let label = cfg.to_string();
        let cell = report.get("mutant", cfg).expect("mutant cell");
        match cfg.mi_config() {
            None => {
                // Baseline: a violation report is impossible by
                // construction; anything else (clean run, segfault) is
                // fine for a program with undefined behaviour.
                if let Err(t) = &cell.outcome {
                    if t.is_violation() {
                        errors.push(format!(
                            "mutant [{label}]: baseline reported a violation: {}",
                            t.message
                        ));
                    }
                }
            }
            Some(mi) => {
                let mech = mi.mechanism.name();
                match verdicts.for_mech(mech) {
                    Expect::Caught => match &cell.outcome {
                        Err(t) if matches!(&t.kind, TrapKind::Violation(m) if m == mech) => {}
                        Err(t) => errors.push(format!(
                            "mutant [{label}]: false negative: expected a {mech} violation, got trap: {}",
                            t.message
                        )),
                        Ok(ok) => errors.push(format!(
                            "mutant [{label}]: false negative: expected a {mech} violation, ran clean (ret {:?})",
                            ok.ret
                        )),
                    },
                    Expect::Missed => {
                        if let Err(t) = &cell.outcome {
                            if t.is_violation() {
                                errors.push(format!(
                                    "mutant [{label}]: false positive: expected a miss, got: {}",
                                    t.message
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    errors
}

/// Differential backend check: sweeps the (safe, mutant) pair through
/// the full matrix under **both** VM backends and byte-compares the
/// reports — outputs, return values, dynamic statistics, per-site
/// profiles, and trap reports (including CHECKTRAP provenance) must all
/// be identical. The fuzz loop samples this on a slice of the case
/// stream; any difference is a VM bug, independent of the guarantee
/// matrix.
pub fn backend_divergence(
    safe: &FuzzProgram,
    mutant: &FuzzProgram,
    case_title: &str,
) -> Vec<String> {
    let programs = match case_sources(safe, mutant, case_title) {
        // Frontend rejections are check_pair_with's finding to report.
        Err(_) => return Vec::new(),
        Ok(p) => p,
    };
    let run = |backend: VmBackend| {
        Driver::new(programs.clone(), matrix_configs())
            .with_jobs(1)
            .with_vm(VmConfig { backend, ..VmConfig::default() })
            .run()
            .to_json(false)
    };
    let (walk, bytecode) = (run(VmBackend::Walk), run(VmBackend::Bytecode));
    if walk == bytecode {
        return Vec::new();
    }
    // Point at the first differing line so the repro header says more
    // than "reports differ".
    let diff = walk
        .lines()
        .zip(bytecode.lines())
        .find(|(w, b)| w != b)
        .map(|(w, b)| format!("walk: {} | bytecode: {}", w.trim(), b.trim()))
        .unwrap_or_else(|| "reports differ in length".to_string());
    vec![format!("VM backend divergence: {diff}")]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shape() {
        let configs = matrix_configs();
        assert_eq!(configs.len(), 2 + 3 * 4);
        // Labels are unique (report lookups key on them).
        let labels: std::collections::BTreeSet<String> =
            configs.iter().map(|c| c.to_string()).collect();
        assert_eq!(labels.len(), configs.len());
    }
}
