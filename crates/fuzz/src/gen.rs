//! The seeded mini-C program generator.
//!
//! Programs are safe by construction: every statement the generator can
//! emit stays inside its object (checked again by
//! [`FuzzProgram::validate`]). The constructs are chosen to cover the
//! frontend and instrumentation surface the corpus exercises by hand:
//! globals/stack/heap/calloc objects, nested structs, in-bounds pointer
//! walks, select- and phi-merged pointers, inttoptr round-trips,
//! pointers crossing calls, recursion with per-frame arrays,
//! `memcpy`/`memset`, and nested control flow.
//!
//! Objects are always fully initialized before the body runs (calloc
//! zero-fill counts), so no configuration can observe uninitialized
//! memory and every configuration must print byte-identical output.

use crate::ast::{ArithOp, Elem, FuzzProgram, Obj, Region, Stmt};
use testutil::Rng;

/// Generates the safe program for one fuzz case.
pub fn gen_program(rng: &mut Rng) -> FuzzProgram {
    let mut objs = Vec::new();

    // Always at least one plain long array, so pointer-shaped
    // statements always have a target.
    objs.push(Obj {
        elem: Elem::Long,
        len: rng.range(4, 49),
        region: *rng.pick(&[Region::Global, Region::Stack, Region::Heap]),
        tail: None,
    });

    for _ in 0..rng.range(1, 5) {
        let region = *rng.pick(&[
            Region::Global,
            Region::Stack,
            Region::Heap,
            Region::Heap,
            Region::HeapCalloc,
        ]);
        // Struct-wrapped (long-only) objects carry the tail member
        // intra-object mutations land in.
        if region != Region::HeapCalloc && rng.percent(20) {
            objs.push(Obj {
                elem: Elem::Long,
                len: rng.range(4, 25),
                region,
                tail: Some(rng.range(2, 7)),
            });
        } else {
            let elem = if region == Region::HeapCalloc {
                Elem::Long
            } else {
                *rng.pick(&[Elem::Long, Elem::Long, Elem::Int, Elem::Char])
            };
            objs.push(Obj { elem, len: rng.range(4, 49), region, tail: None });
        }
    }

    // Occasionally include a >1 GiB object (Low-Fat fallback path).
    if rng.percent(15) {
        objs.push(Obj {
            elem: Elem::Long,
            len: rng.range(4, 17),
            region: Region::HeapOversized,
            tail: None,
        });
    }

    let init = (0..objs.len()).map(|_| (rng.irange(1, 7), rng.irange(0, 9))).collect();
    let x0 = rng.irange(1, 100);

    let n = rng.range(3, 12);
    let body = (0..n).map(|_| gen_stmt(&objs, rng, 0)).collect();

    let p = FuzzProgram { objs, body, x0, init, mutation: None };
    p.validate().expect("generator emitted an invalid program");
    p
}

/// Object indices with `Long` elements (plain or struct — both expose a
/// `long*` base).
fn long_objs(objs: &[Obj]) -> Vec<usize> {
    (0..objs.len()).filter(|&i| objs[i].elem == Elem::Long).collect()
}

/// Accessible byte size (for oversized objects: the safe prefix).
fn cap(o: &Obj) -> u64 {
    o.len * o.elem.width()
}

fn gen_stmt(objs: &[Obj], rng: &mut Rng, depth: usize) -> Stmt {
    let longs = long_objs(objs);
    let structs: Vec<usize> = (0..objs.len()).filter(|&i| objs[i].tail.is_some()).collect();
    // Weighted menu: plain loads/stores and loops dominate, the
    // construct-specific statements each get a steady share.
    loop {
        match rng.range(0, 20) {
            0 | 1 => {
                return Stmt::Arith {
                    op: *rng.pick(&[ArithOp::Add, ArithOp::Sub, ArithOp::Mul, ArithOp::Xor]),
                    k: rng.irange(1, 17),
                }
            }
            2 | 3 => {
                let obj = rng.range(0, objs.len() as u64) as usize;
                return Stmt::Store { obj, idx: rng.range(0, objs[obj].len) };
            }
            4 | 5 => {
                let obj = rng.range(0, objs.len() as u64) as usize;
                return Stmt::Load { obj, idx: rng.range(0, objs[obj].len) };
            }
            6 => {
                let obj = rng.range(0, objs.len() as u64) as usize;
                return Stmt::LoopFill { obj, mul: rng.irange(1, 9), add: rng.irange(0, 9) };
            }
            7 => return Stmt::LoopSum { obj: rng.range(0, objs.len() as u64) as usize },
            8 => {
                let obj = *rng.pick(&longs);
                let len = objs[obj].len;
                let start = rng.range(0, len);
                let step = rng.range(1, 4);
                let count = (len - start) / step;
                if count == 0 {
                    continue;
                }
                return Stmt::PtrWalk { obj, start, step, count: rng.range(1, count + 1) };
            }
            9 => {
                let a = *rng.pick(&longs);
                let b = *rng.pick(&longs);
                return Stmt::SelectDeref {
                    a,
                    ia: rng.range(0, objs[a].len),
                    b,
                    ib: rng.range(0, objs[b].len),
                };
            }
            10 => {
                let a = *rng.pick(&longs);
                let b = *rng.pick(&longs);
                return Stmt::PhiDeref {
                    a,
                    ia: rng.range(0, objs[a].len),
                    b,
                    ib: rng.range(0, objs[b].len),
                };
            }
            11 => {
                let obj = *rng.pick(&longs);
                return Stmt::IntPtr { obj, idx: rng.range(0, objs[obj].len) };
            }
            12 => return Stmt::CallSum { n: rng.range(1, 33) },
            13 => {
                let obj = *rng.pick(&longs);
                if rng.chance() {
                    return Stmt::CallPeek { obj, idx: rng.range(0, objs[obj].len) };
                }
                return Stmt::CallPoke { obj, idx: rng.range(0, objs[obj].len) };
            }
            14 => {
                let obj = *rng.pick(&longs);
                return Stmt::CallRange { obj, n: rng.range(1, objs[obj].len + 1) };
            }
            15 => return Stmt::CallRec { n: rng.range(1, 25) },
            16 => {
                if objs.len() < 2 {
                    continue;
                }
                let dst = rng.range(0, objs.len() as u64) as usize;
                let src = rng.range(0, objs.len() as u64) as usize;
                if dst == src {
                    continue;
                }
                let max = cap(&objs[dst]).min(cap(&objs[src]));
                return Stmt::MemCpy { dst, src, n: rng.range(1, max + 1) };
            }
            17 => {
                let dst = rng.range(0, objs.len() as u64) as usize;
                return Stmt::MemSet {
                    dst,
                    byte: rng.range(0, 64) as u8,
                    n: rng.range(1, cap(&objs[dst]) + 1),
                };
            }
            18 => {
                if structs.is_empty() {
                    continue;
                }
                let obj = *rng.pick(&structs);
                let idx = rng.range(0, objs[obj].tail.unwrap());
                if rng.chance() {
                    return Stmt::TailStore { obj, idx };
                }
                return Stmt::TailLoad { obj, idx };
            }
            _ => {
                if depth >= 2 {
                    continue;
                }
                if rng.chance() {
                    let then_n = rng.range(1, 4);
                    let else_n = rng.range(0, 3);
                    return Stmt::If {
                        k: rng.range(1, 9),
                        then_s: (0..then_n).map(|_| gen_stmt(objs, rng, depth + 1)).collect(),
                        else_s: (0..else_n).map(|_| gen_stmt(objs, rng, depth + 1)).collect(),
                    };
                }
                let body_n = rng.range(1, 4);
                return Stmt::Loop {
                    n: rng.range(1, 9),
                    body: (0..body_n).map(|_| gen_stmt(objs, rng, depth + 1)).collect(),
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_validate_and_emit_deterministically() {
        for i in 0..200 {
            let p1 = gen_program(&mut Rng::for_case(11, i));
            let p2 = gen_program(&mut Rng::for_case(11, i));
            assert!(p1.validate().is_ok(), "case {i}");
            assert_eq!(p1.emit_c("t"), p2.emit_c("t"), "case {i} not deterministic");
        }
    }

    #[test]
    fn generator_covers_the_construct_space() {
        // Across a modest sample, every statement kind and region shows
        // up — the grammar has no dead productions.
        let mut kinds = std::collections::BTreeSet::new();
        let mut regions = std::collections::BTreeSet::new();
        for i in 0..300 {
            let p = gen_program(&mut Rng::for_case(5, i));
            for o in &p.objs {
                regions.insert(format!("{:?}", o.region));
            }
            let mut walk = |s: &Stmt| kinds.insert(variant_name(s));
            fn visit(s: &Stmt, f: &mut dyn FnMut(&Stmt) -> bool) {
                f(s);
                match s {
                    Stmt::If { then_s, else_s, .. } => {
                        then_s.iter().for_each(|s| visit(s, f));
                        else_s.iter().for_each(|s| visit(s, f));
                    }
                    Stmt::Loop { body, .. } => body.iter().for_each(|s| visit(s, f)),
                    _ => {}
                }
            }
            p.body.iter().for_each(|s| visit(s, &mut walk));
        }
        assert_eq!(regions.len(), 5, "regions seen: {regions:?}");
        assert!(kinds.len() >= 18, "statement kinds seen: {kinds:?}");
    }

    fn variant_name(s: &Stmt) -> &'static str {
        match s {
            Stmt::Arith { .. } => "Arith",
            Stmt::Store { .. } => "Store",
            Stmt::Load { .. } => "Load",
            Stmt::LoopFill { .. } => "LoopFill",
            Stmt::LoopSum { .. } => "LoopSum",
            Stmt::PtrWalk { .. } => "PtrWalk",
            Stmt::SelectDeref { .. } => "SelectDeref",
            Stmt::PhiDeref { .. } => "PhiDeref",
            Stmt::IntPtr { .. } => "IntPtr",
            Stmt::CallSum { .. } => "CallSum",
            Stmt::CallPeek { .. } => "CallPeek",
            Stmt::CallPoke { .. } => "CallPoke",
            Stmt::CallRange { .. } => "CallRange",
            Stmt::CallRec { .. } => "CallRec",
            Stmt::MemCpy { .. } => "MemCpy",
            Stmt::MemSet { .. } => "MemSet",
            Stmt::TailStore { .. } => "TailStore",
            Stmt::TailLoad { .. } => "TailLoad",
            Stmt::If { .. } => "If",
            Stmt::Loop { .. } => "Loop",
        }
    }
}
