//! `promote` — turn fuzzer mutants into corpus regression tests.
//!
//! For every mutation-catalogue kind, the tool takes the first fuzz case
//! of that kind (from a fixed seed, so reruns are reproducible), verifies
//! it against the differential oracle, shrinks it as far as the oracle
//! keeps agreeing with the guarantee matrix, and writes it to
//! `tests/corpus/fuzz_<kind>.c` with `// CHECK` verdict lines measured
//! from the actual default-configuration runs. The corpus runner
//! (`tests/corpus.rs`) then pins those verdicts forever — a mechanism or
//! optimizer change that flips one fails CI with a tiny readable repro.
//!
//! ```text
//! cargo run -p fuzz --bin promote [-- --seed S] [--out DIR]
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use fuzz::mutate::ALL_KINDS;
use fuzz::{case_programs, oracle, shrink};
use meminstrument::runtime::{compile, compile_baseline, BuildOptions};
use meminstrument::{Mechanism, MiConfig};
use memvm::interp::Trap;
use memvm::VmConfig;

/// The concrete default-configuration outcome, in CHECK-line syntax.
fn check_verdict(module: &mir::Module, mech: Option<Mechanism>) -> String {
    let prog = match mech {
        None => compile_baseline(module.clone(), BuildOptions::default()),
        Some(m) => compile(module.clone(), &MiConfig::new(m), BuildOptions::default()),
    };
    match prog.run_main(VmConfig::default()) {
        Ok(out) => format!("ok={}", out.ret.map(|v| v.as_int() as i64).unwrap_or(0)),
        Err(Trap::MemSafetyViolation { .. }) => "violation".into(),
        Err(Trap::UnmappedAccess { .. }) => "segfault".into(),
        Err(t) => panic!("unexpected trap under {mech:?}: {t}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 0u64;
    let mut out_dir = format!("{}/../../tests/corpus", env!("CARGO_MANIFEST_DIR"));
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().and_then(|s| s.parse().ok()).expect("--seed N"),
            "--out" => out_dir = it.next().expect("--out DIR").clone(),
            other => panic!("unknown option {other}"),
        }
    }

    // First case index per kind, scanning forward from the seed.
    let mut first: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut index = 0u64;
    while first.len() < ALL_KINDS.len() {
        let (_, mutant) = case_programs(seed, index);
        let kind = mutant.mutation.as_ref().unwrap().kind.name();
        first.entry(kind).or_insert(index);
        index += 1;
        assert!(index < 10_000, "kind coverage stalled at {first:?}");
    }

    for (kind, &case) in &first {
        let (_, mutant) = case_programs(seed, case);
        let errors = oracle::check_pair(
            &{
                let mut s = mutant.clone();
                s.mutation = None;
                s
            },
            &mutant,
            "promote",
        );
        assert!(errors.is_empty(), "case {case} ({kind}) fails its own oracle: {errors:?}");

        // Shrink while the oracle still agrees with the prediction — the
        // minimal program whose verdicts are still exactly the matrix row.
        let (min, attempts) = shrink::shrink(&mutant, |cand| {
            let mut safe = cand.clone();
            safe.mutation = None;
            oracle::check_pair(&safe, cand, "promote shrink").is_empty()
        });

        let m = min.mutation.as_ref().unwrap();
        let body = min.emit_c(&format!("promoted fuzz mutant: {kind}"));
        let module = cfront::compile(&body).expect("shrunk program compiles");

        let mut src = String::new();
        let _ = writeln!(src, "// Promoted from the generative fuzzer: seed={seed} case={case}");
        let _ = writeln!(src, "// kind={kind}, model: {}", m.verdicts.summary());
        let _ = writeln!(src, "// (regenerate: cargo run -p fuzz --bin promote)");
        for (cfg, mech) in [
            ("baseline", None),
            ("softbound", Some(Mechanism::SoftBound)),
            ("lowfat", Some(Mechanism::LowFat)),
            ("redzone", Some(Mechanism::RedZone)),
        ] {
            let _ = writeln!(src, "// CHECK {cfg}: {}", check_verdict(&module, mech));
        }
        src.push_str(&body);

        let path = format!("{out_dir}/fuzz_{}.c", kind.replace('-', "_"));
        std::fs::write(&path, &src).expect("write corpus file");
        println!("{path}: case {case}, {attempts} shrink probes");
    }
}
