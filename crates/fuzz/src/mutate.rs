//! The violation-injecting mutator and its expected-verdict model.
//!
//! A mutation appends exactly one labelled out-of-bounds access to the
//! end of a safe program (after the checksum epilogue, so the optimizer
//! cannot mix it into the safe computation and the safe prefix behaves
//! identically in the safe and mutant builds). For every mutation the
//! mutator *predicts* what each mechanism must do, from the mechanisms'
//! own layout math:
//!
//! * **SoftBound** keeps exact per-pointer bounds `[0, size)`: it must
//!   catch any access interval leaving the allocation — except through
//!   `memcpy`/`memset`, whose wrapper checks are off by default
//!   (§5.1.2).
//! * **Low-Fat** checks against the power-of-two size class
//!   (`lowfat::layout::class_for_request`): accesses inside the class
//!   padding are tolerated, anything beyond (or any underflow, which
//!   wraps the unsigned offset) traps. Requests over the largest class
//!   fall back to the plain allocator and are unchecked. No
//!   `memcpy`/`memset` checks.
//! * **RedZone** only sees the 16-byte guard zones around the
//!   16-rounded object: an access overlapping a zone traps (including
//!   via `memcpy`/`memset` — ASan-style interceptors), anything that
//!   jumps past it is missed.
//!
//! The oracle then *tests the prediction*: a mechanism catching less is
//! a false negative (broken guarantee), catching more is a false
//! positive (broken usability). Either way the model — this file — and
//! the implementation are out of sync, which is exactly what the fuzzer
//! exists to detect.

use std::fmt::Write as _;

use crate::ast::{Elem, FuzzProgram, Obj, Region};
use testutil::Rng;

/// What a mechanism is expected to do with a mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expect {
    /// The mechanism must report a violation (in all four of its
    /// configurations: O0 and every O3 extension point).
    Caught,
    /// The mechanism must *not* report a violation. The access may
    /// still land in unmapped memory and segfault — that is the
    /// documented guarantee gap, not a mechanism report.
    Missed,
}

impl Expect {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Expect::Caught => "caught",
            Expect::Missed => "missed",
        }
    }
}

/// Expected verdicts per mechanism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Verdicts {
    /// SoftBound.
    pub sb: Expect,
    /// Low-Fat Pointers.
    pub lf: Expect,
    /// Red zones.
    pub rz: Expect,
}

impl Verdicts {
    /// The expectation for a mechanism by its `Mechanism::name()` string.
    pub fn for_mech(&self, name: &str) -> Expect {
        match name {
            "softbound" => self.sb,
            "lowfat" => self.lf,
            "redzone" => self.rz,
            other => panic!("unknown mechanism {other}"),
        }
    }

    /// `sb=caught lf=missed rz=caught` display form.
    pub fn summary(&self) -> String {
        format!("sb={} lf={} rz={}", self.sb.name(), self.lf.name(), self.rz.name())
    }
}

/// The mutation catalogue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutKind {
    /// `obj[len]` read — one element past the end.
    OffByOneRead,
    /// `obj[len] = x` — one element past the end.
    OffByOneWrite,
    /// An 8-byte read through a `long*` placed 4 bytes before the end:
    /// the access *starts* in bounds and *widens* out.
    WideRead,
    /// An in-bounds base pointer escapes into a helper call which
    /// dereferences it out of bounds — the check fires in a different
    /// function than the allocation.
    EscapeDeref,
    /// A read past the red zone: the first element entirely *behind*
    /// the trailing guard zone. Red zones are structurally blind to it.
    GuardJump,
    /// Read from bytes `[-8, 0)` — inside the leading red zone.
    UnderflowNear,
    /// Read from bytes `[-48, -40)` — beyond the leading red zone.
    UnderflowFar,
    /// Intra-object overflow: `obj.arr[len + k]` lands in `obj.tail`.
    /// Inside the allocation — invisible to every whole-object
    /// mechanism (Appendix B).
    IntraObject,
    /// An access far beyond a >1 GiB allocation, which no Low-Fat size
    /// class can represent.
    OversizedOverflow,
    /// `memset` crossing the object end: no SoftBound/Low-Fat wrapper
    /// checks by default, but red zones intercept it.
    MemsetPastEnd,
}

/// All catalogue entries, in stable order.
pub const ALL_KINDS: [MutKind; 10] = [
    MutKind::OffByOneRead,
    MutKind::OffByOneWrite,
    MutKind::WideRead,
    MutKind::EscapeDeref,
    MutKind::GuardJump,
    MutKind::UnderflowNear,
    MutKind::UnderflowFar,
    MutKind::IntraObject,
    MutKind::OversizedOverflow,
    MutKind::MemsetPastEnd,
];

impl MutKind {
    /// Stable kebab-case name (report keys, repro file names).
    pub fn name(self) -> &'static str {
        match self {
            MutKind::OffByOneRead => "off-by-one-read",
            MutKind::OffByOneWrite => "off-by-one-write",
            MutKind::WideRead => "wide-read",
            MutKind::EscapeDeref => "escape-deref",
            MutKind::GuardJump => "guard-jump",
            MutKind::UnderflowNear => "underflow-near",
            MutKind::UnderflowFar => "underflow-far",
            MutKind::IntraObject => "intra-object",
            MutKind::OversizedOverflow => "oversized-overflow",
            MutKind::MemsetPastEnd => "memset-past-end",
        }
    }

    /// Whether `obj` can host this mutation.
    fn eligible(self, o: &Obj) -> bool {
        match self {
            MutKind::OffByOneRead
            | MutKind::OffByOneWrite
            | MutKind::WideRead
            | MutKind::GuardJump
            | MutKind::MemsetPastEnd => o.tail.is_none() && o.region != Region::HeapOversized,
            MutKind::EscapeDeref | MutKind::UnderflowNear | MutKind::UnderflowFar => {
                o.elem == Elem::Long && o.tail.is_none() && o.region != Region::HeapOversized
            }
            MutKind::IntraObject => o.tail.is_some(),
            MutKind::OversizedOverflow => o.region == Region::HeapOversized,
        }
    }
}

/// One injected violation: the kind, the object it targets, a
/// kind-specific parameter, and the predicted verdicts.
#[derive(Clone, Debug, PartialEq)]
pub struct Mutation {
    /// Catalogue entry.
    pub kind: MutKind,
    /// Target object (index into the program's object table).
    pub obj: usize,
    /// Kind-specific parameter (extra element offset for
    /// `EscapeDeref`/`IntraObject`; unused otherwise).
    pub param: u64,
    /// Predicted per-mechanism verdicts.
    pub verdicts: Verdicts,
}

/// Rounds up to the red-zone granule-aligned object footprint
/// (mirrors `RzState::carve`).
fn rz_rounded(size: u64) -> u64 {
    (size.max(1) + 15) & !15
}

/// The Low-Fat size class covering `size` bytes, or `None` for
/// oversized requests (fallback allocator, unchecked).
fn lf_class(size: u64) -> Option<u64> {
    lowfat::layout::class_for_request(size).map(lowfat::layout::alloc_size)
}

/// Predicts the verdicts for a single access of byte interval
/// `[lo, hi)` relative to the object base. `via_memops` marks accesses
/// performed by `memcpy`/`memset` rather than loads/stores.
pub fn interval_verdicts(o: &Obj, lo: i64, hi: i64, via_memops: bool) -> Verdicts {
    assert!(lo < hi, "empty access interval");
    let size = o.size() as i64;

    let oob = lo < 0 || hi > size;
    let sb = if via_memops || !oob { Expect::Missed } else { Expect::Caught };

    let lf = match lf_class(o.size()) {
        None => Expect::Missed, // fallback allocator: unchecked
        Some(_) if via_memops => Expect::Missed,
        Some(class) => {
            // `__lf_check` fails iff the unsigned offset leaves the
            // class; underflow wraps and is always caught.
            if lo < 0 || hi > class as i64 {
                Expect::Caught
            } else {
                Expect::Missed
            }
        }
    };

    // Red zones trap any access overlapping a guard zone, whether from
    // a load/store or a memcpy/memset interceptor. Zones are
    // granule-aligned, so interval overlap is exact.
    let size_r = rz_rounded(o.size()) as i64;
    let overlaps = |a: i64, b: i64| lo < b && hi > a;
    let rz = if overlaps(-16, 0) || overlaps(size_r, size_r + 16) {
        Expect::Caught
    } else {
        Expect::Missed
    };

    Verdicts { sb, lf, rz }
}

impl Mutation {
    /// Builds a mutation of `kind` against object `obj` (which must be
    /// eligible), computing the predicted verdicts.
    pub fn new(kind: MutKind, objs: &[Obj], obj: usize, param: u64) -> Mutation {
        let o = &objs[obj];
        assert!(kind.eligible(o), "{} not eligible for {:?}", kind.name(), o);
        let w = o.elem.width() as i64;
        let size = o.size() as i64;
        let verdicts = match kind {
            MutKind::OffByOneRead | MutKind::OffByOneWrite => {
                interval_verdicts(o, size, size + w, false)
            }
            MutKind::WideRead => interval_verdicts(o, size - 4, size + 4, false),
            MutKind::EscapeDeref => {
                let lo = (o.len + param) as i64 * 8;
                interval_verdicts(o, lo, lo + 8, false)
            }
            MutKind::GuardJump => {
                let lo = rz_rounded(o.size()) as i64 + 16;
                interval_verdicts(o, lo, lo + w, false)
            }
            MutKind::UnderflowNear => interval_verdicts(o, -8, 0, false),
            MutKind::UnderflowFar => interval_verdicts(o, -48, -40, false),
            MutKind::IntraObject => {
                let lo = (o.len + param) as i64 * 8;
                interval_verdicts(o, lo, lo + 8, false)
            }
            MutKind::OversizedOverflow => {
                let lo = size + 8192;
                interval_verdicts(o, lo, lo + 8, false)
            }
            MutKind::MemsetPastEnd => interval_verdicts(o, size - 4, size + 4, true),
        };
        Mutation { kind, obj, param, verdicts }
    }

    /// Whether the mutation's C text calls the `f_peek` helper.
    pub fn uses_peek(&self) -> bool {
        self.kind == MutKind::EscapeDeref
    }

    /// Appends the mutation's C text to `c` (inside `main`, after the
    /// checksum epilogue). Every read feeds a `print_i64` so dead-code
    /// elimination cannot drop it; writes are stores with no later
    /// overwrite, which block-local DSE keeps.
    pub fn emit(&self, c: &mut String, objs: &[Obj]) {
        let o = &objs[self.obj];
        let i = self.obj;
        let _ = writeln!(
            c,
            "    /* mutation: {} on {} ({}) */",
            self.kind.name(),
            o.name(i),
            self.verdicts.summary()
        );
        match self.kind {
            MutKind::OffByOneRead => {
                let _ = writeln!(c, "    x += {};", o.access(i, &o.len.to_string()));
                c.push_str("    print_i64(x);\n");
            }
            MutKind::OffByOneWrite => {
                let _ =
                    writeln!(c, "    {} = x & {};", o.access(i, &o.len.to_string()), o.elem.mask());
            }
            MutKind::WideRead => {
                c.push_str("    {\n");
                let _ = writeln!(c, "        char *mc = (char*)&{};", o.access(i, "0"));
                let _ = writeln!(c, "        long *mw = (long*)(mc + {});", o.size() - 4);
                c.push_str("        x += *mw;\n        print_i64(x);\n    }\n");
            }
            MutKind::EscapeDeref => {
                let _ = writeln!(c, "    x += f_peek({}, {});", o.base(i), o.len + self.param);
                c.push_str("    print_i64(x);\n");
            }
            MutKind::GuardJump => {
                let idx = (rz_rounded(o.size()) + 16) / o.elem.width();
                let _ = writeln!(c, "    x += {};", o.access(i, &idx.to_string()));
                c.push_str("    print_i64(x);\n");
            }
            MutKind::UnderflowNear => {
                c.push_str("    {\n");
                let _ = writeln!(c, "        long *mu = &{};", o.access(i, "1"));
                c.push_str("        x += mu[-2];\n        print_i64(x);\n    }\n");
            }
            MutKind::UnderflowFar => {
                c.push_str("    {\n");
                let _ = writeln!(c, "        long *mu = &{};", o.access(i, "1"));
                c.push_str("        x += mu[-7];\n        print_i64(x);\n    }\n");
            }
            MutKind::IntraObject => {
                let _ = writeln!(c, "    x += {};", o.access(i, &(o.len + self.param).to_string()));
                c.push_str("    print_i64(x);\n");
            }
            MutKind::OversizedOverflow => {
                let idx = (o.size() + 8192) / 8;
                let _ = writeln!(c, "    x += {};", o.access(i, &idx.to_string()));
                c.push_str("    print_i64(x);\n");
            }
            MutKind::MemsetPastEnd => {
                let _ = writeln!(
                    c,
                    "    memset((char*)&{} + {}, 1, 8);",
                    o.access(i, "0"),
                    o.size() - 4
                );
            }
        }
    }
}

/// Derives a mutant from a safe program: picks a catalogue entry, an
/// eligible target object (appending a fresh one when the program has
/// none — every kind therefore gets even coverage regardless of
/// generator luck), and attaches the mutation with predicted verdicts.
pub fn mutate(safe: &FuzzProgram, rng: &mut Rng) -> FuzzProgram {
    let mut p = safe.clone();
    let kind = *rng.pick(&ALL_KINDS);

    let eligible: Vec<usize> = (0..p.objs.len()).filter(|&i| kind.eligible(&p.objs[i])).collect();
    let obj = if kind == MutKind::UnderflowFar {
        // The `[-48, -40)` probe must land in *defined* memory for the
        // red-zone miss prediction to hold: relative to an arbitrary
        // object it can hit an unrelated neighbour's guard zone (tiny
        // stack slabs round to 16 bytes, so their zones sit at any
        // negative offset). Heap carves are sequential, so a pad
        // allocated immediately before a fresh heap target pins the
        // probe inside the pad's body: with pad footprint >= 32 the
        // probe `[pad_end - 32, pad_end - 24)` precedes the shared
        // zone for every mechanism's allocator.
        p.objs.push(Obj {
            elem: Elem::Long,
            len: rng.range(4, 17),
            region: Region::Heap,
            tail: None,
        });
        p.init.push((rng.irange(1, 7), rng.irange(0, 9)));
        p.objs.push(fresh_target(kind, rng));
        p.init.push((rng.irange(1, 7), rng.irange(0, 9)));
        p.objs.len() - 1
    } else if eligible.is_empty() {
        p.objs.push(fresh_target(kind, rng));
        p.init.push((rng.irange(1, 7), rng.irange(0, 9)));
        p.objs.len() - 1
    } else {
        *rng.pick(&eligible)
    };

    let param = match kind {
        MutKind::EscapeDeref => rng.range(0, 3),
        MutKind::IntraObject => rng.range(0, p.objs[obj].tail.unwrap()),
        _ => 0,
    };
    p.mutation = Some(Mutation::new(kind, &p.objs, obj, param));
    p
}

/// A fresh object satisfying `kind`'s eligibility.
fn fresh_target(kind: MutKind, rng: &mut Rng) -> Obj {
    match kind {
        MutKind::IntraObject => Obj {
            elem: Elem::Long,
            len: rng.range(4, 17),
            region: *rng.pick(&[Region::Global, Region::Stack, Region::Heap]),
            tail: Some(rng.range(2, 7)),
        },
        MutKind::OversizedOverflow => Obj {
            elem: Elem::Long,
            len: rng.range(4, 17),
            region: Region::HeapOversized,
            tail: None,
        },
        // The far-underflow target must sit right after its pad on the
        // heap cursor (see `mutate`); `malloc` and `calloc` share it.
        MutKind::UnderflowFar => Obj {
            elem: Elem::Long,
            len: rng.range(4, 33),
            region: *rng.pick(&[Region::Heap, Region::HeapCalloc]),
            tail: None,
        },
        MutKind::EscapeDeref | MutKind::UnderflowNear => Obj {
            elem: Elem::Long,
            len: rng.range(4, 33),
            region: *rng.pick(&[Region::Global, Region::Stack, Region::Heap, Region::HeapCalloc]),
            tail: None,
        },
        _ => Obj {
            elem: *rng.pick(&[Elem::Long, Elem::Long, Elem::Int, Elem::Char]),
            len: rng.range(4, 33),
            region: *rng.pick(&[Region::Global, Region::Stack, Region::Heap, Region::HeapCalloc]),
            tail: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::OVERSIZED_BYTES;

    fn obj(elem: Elem, len: u64) -> Obj {
        Obj { elem, len, region: Region::Heap, tail: None }
    }

    #[test]
    fn off_by_one_matrix() {
        // 24-byte long array: class 32, rounded 32. [24, 32) sits in
        // both the Low-Fat padding and the red-zone rounding gap.
        let o = obj(Elem::Long, 3);
        let v = interval_verdicts(&o, 24, 32, false);
        assert_eq!((v.sb, v.lf, v.rz), (Expect::Caught, Expect::Missed, Expect::Missed));

        // 32-byte long array: rounded exactly, so [32, 40) enters the
        // trailing zone; class 64 still tolerates it.
        let o = obj(Elem::Long, 4);
        let v = interval_verdicts(&o, 32, 40, false);
        assert_eq!((v.sb, v.lf, v.rz), (Expect::Caught, Expect::Missed, Expect::Caught));
    }

    #[test]
    fn underflow_wraps_lowfat_but_clears_far_zone() {
        let o = obj(Elem::Long, 4);
        let near = interval_verdicts(&o, -8, 0, false);
        assert_eq!((near.sb, near.lf, near.rz), (Expect::Caught, Expect::Caught, Expect::Caught));
        let far = interval_verdicts(&o, -48, -40, false);
        assert_eq!((far.sb, far.lf, far.rz), (Expect::Caught, Expect::Caught, Expect::Missed));
    }

    #[test]
    fn guard_jump_clears_redzone() {
        // 40-byte array: size_r 48, access [64, 72): past the zone
        // [48, 64), beyond class 64 -> lowfat catches, redzone blind.
        let o = obj(Elem::Long, 5);
        let v = interval_verdicts(&o, 64, 72, false);
        assert_eq!((v.sb, v.lf, v.rz), (Expect::Caught, Expect::Caught, Expect::Missed));
        // 64-byte array: size_r 64, access [80, 88) within class 128:
        // only SoftBound sees it.
        let o = obj(Elem::Long, 8);
        let v = interval_verdicts(&o, 80, 88, false);
        assert_eq!((v.sb, v.lf, v.rz), (Expect::Caught, Expect::Missed, Expect::Missed));
    }

    #[test]
    fn memops_bypass_everything_but_redzones() {
        // 48-byte array (16-rounded): memset [44, 52) touches the zone.
        let o = obj(Elem::Long, 6);
        let v = interval_verdicts(&o, 44, 52, true);
        assert_eq!((v.sb, v.lf, v.rz), (Expect::Missed, Expect::Missed, Expect::Caught));
        // 40-byte array: memset [36, 44) lands in the rounding gap
        // [40, 48) -- nobody sees it.
        let o = obj(Elem::Long, 5);
        let v = interval_verdicts(&o, 36, 44, true);
        assert_eq!((v.sb, v.lf, v.rz), (Expect::Missed, Expect::Missed, Expect::Missed));
    }

    #[test]
    fn oversized_is_unchecked_by_lowfat() {
        let o = Obj { elem: Elem::Long, len: 8, region: Region::HeapOversized, tail: None };
        assert_eq!(o.size(), OVERSIZED_BYTES);
        let lo = o.size() as i64 + 8192;
        let v = interval_verdicts(&o, lo, lo + 8, false);
        assert_eq!((v.sb, v.lf, v.rz), (Expect::Caught, Expect::Missed, Expect::Missed));
    }

    #[test]
    fn intra_object_is_universally_missed() {
        let o = Obj { elem: Elem::Long, len: 4, region: Region::Stack, tail: Some(3) };
        let m = Mutation::new(MutKind::IntraObject, &[o], 0, 1);
        assert_eq!(
            (m.verdicts.sb, m.verdicts.lf, m.verdicts.rz),
            (Expect::Missed, Expect::Missed, Expect::Missed)
        );
    }

    #[test]
    fn every_kind_mutates_every_seed() {
        // The mutator must always produce a well-formed mutant, adding
        // a target object when the base program lacks one.
        let base = FuzzProgram { objs: vec![], body: vec![], x0: 1, init: vec![], mutation: None };
        for i in 0..64 {
            let mut rng = Rng::for_case(3, i);
            let m = mutate(&base, &mut rng);
            let mu = m.mutation.as_ref().unwrap();
            assert!(mu.kind.eligible(&m.objs[mu.obj]));
            assert!(m.validate().is_ok());
            assert_eq!(m.objs.len(), m.init.len());
        }
    }
}
