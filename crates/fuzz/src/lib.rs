#![warn(missing_docs)]

//! Generative differential fuzzer for the memory-safety
//! instrumentations.
//!
//! Each case derives two programs from a `(seed, index)` pair via
//! [`testutil::Rng::for_case`]:
//!
//! 1. a **safe** program from the seeded generator ([`gen`]), which
//!    every configuration must run to completion with byte-identical
//!    output, and
//! 2. a **mutant** with exactly one injected spatial violation
//!    ([`mutate`]), which every mechanism must judge exactly as the
//!    guarantee matrix predicts.
//!
//! The oracle ([`oracle`]) sweeps both through a 14-configuration
//! matrix (baseline + three mechanisms × O0/three O3 extension points)
//! on the cached `bench::driver`. Failing cases are minimized by the
//! structural shrinker ([`shrink`]) and written out as standalone `.c`
//! repros replayable from the `(seed, index)` pair alone.
//!
//! Everything is deterministic: the same seed and case count produce a
//! byte-identical report, independent of worker count.

pub mod ast;
pub mod gen;
pub mod mutate;
pub mod oracle;
pub mod shrink;

use std::fmt::Write as _;
use std::path::PathBuf;

use mutate::Verdicts;
use testutil::Rng;

/// Fuzzing run options.
#[derive(Clone, Debug)]
pub struct FuzzOpts {
    /// Root seed; every case stream derives from `(seed, index)`.
    pub seed: u64,
    /// Number of cases.
    pub cases: u64,
    /// Worker threads (case-level parallelism).
    pub jobs: usize,
    /// Minimize failing cases before reporting.
    pub shrink: bool,
    /// Where to write minimized `.c` repros for failing cases.
    pub fail_dir: Option<PathBuf>,
    /// VM backend the oracle matrix executes under. Independent of the
    /// backend, every eighth case is additionally swept through *both*
    /// backends and the reports byte-compared
    /// ([`oracle::backend_divergence`]).
    pub backend: memvm::VmBackend,
}

impl Default for FuzzOpts {
    fn default() -> FuzzOpts {
        FuzzOpts {
            seed: 0,
            cases: 100,
            jobs: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            shrink: true,
            fail_dir: None,
            backend: memvm::VmBackend::default(),
        }
    }
}

/// One failing case, with its minimized repro.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Case index (replay with `mi fuzz --seed <seed> --replay <index>`).
    pub index: u64,
    /// Mutation kind name.
    pub kind: &'static str,
    /// Oracle errors (before shrinking).
    pub errors: Vec<String>,
    /// Minimized failing C source, with a repro header.
    pub minimized_c: String,
    /// Candidate programs the shrinker tried.
    pub shrink_attempts: u64,
}

/// Aggregated result of a fuzzing run.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Root seed.
    pub seed: u64,
    /// Cases executed.
    pub cases: u64,
    /// Mutants per catalogue kind.
    pub kind_counts: std::collections::BTreeMap<&'static str, u64>,
    /// Expected-caught counts per mechanism (from the verdict model).
    pub caught_counts: std::collections::BTreeMap<&'static str, u64>,
    /// Failing cases, ascending by index.
    pub failures: Vec<Failure>,
}

impl FuzzReport {
    /// Whether the run found no oracle violations.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Deterministic text rendering (no timings, no paths): the
    /// acceptance-criteria artifact that must be byte-identical across
    /// reruns and worker counts.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "fuzz-report/1 seed={} cases={}", self.seed, self.cases);
        let _ = writeln!(s, "mutants by kind:");
        for (kind, n) in &self.kind_counts {
            let _ = writeln!(s, "  {kind:<20} {n}");
        }
        let _ = writeln!(s, "expected caught by mechanism:");
        for (mech, n) in &self.caught_counts {
            let _ = writeln!(s, "  {mech:<20} {n}");
        }
        if self.failures.is_empty() {
            let _ = writeln!(s, "result: ok ({} cases, 0 failures)", self.cases);
        } else {
            let _ = writeln!(s, "result: FAILED ({} of {} cases)", self.failures.len(), self.cases);
            for f in &self.failures {
                let _ = writeln!(s, "case {} [{}]:", f.index, f.kind);
                for e in &f.errors {
                    let _ = writeln!(s, "  {e}");
                }
                let _ = writeln!(s, "  replay: mi fuzz --seed {} --replay {}", self.seed, f.index);
            }
        }
        s
    }
}

/// Generates the (safe, mutant) pair for one case. The derivation is
/// the replay contract: same `(seed, index)`, same programs, anywhere.
pub fn case_programs(seed: u64, index: u64) -> (ast::FuzzProgram, ast::FuzzProgram) {
    let mut rng = Rng::for_case(seed, index);
    let safe = gen::gen_program(&mut rng);
    let mutant = mutate::mutate(&safe, &mut rng);
    (safe, mutant)
}

/// Runs one case through the oracle. Returns the oracle errors (empty
/// means pass).
pub fn run_case(seed: u64, index: u64) -> Vec<String> {
    run_case_with(seed, index, memvm::VmConfig::default())
}

/// Like [`run_case`] under an explicit VM configuration — the entry point
/// the `mi serve` daemon's fuzz jobs execute cases through.
pub fn run_case_with(seed: u64, index: u64, vm: memvm::VmConfig) -> Vec<String> {
    let (safe, mutant) = case_programs(seed, index);
    oracle::check_pair_with(&safe, &mutant, &format!("fuzz seed={seed} case={index}"), vm)
}

/// The standalone repro source for a failing (possibly shrunk) mutant.
fn repro_source(seed: u64, index: u64, mutant: &ast::FuzzProgram, errors: &[String]) -> String {
    let m = mutant.mutation.as_ref().expect("repro of a mutant");
    let mut header = String::new();
    let _ = writeln!(header, "// fuzz repro: seed={seed} case={index} kind={}", m.kind.name());
    let _ = writeln!(header, "// expected: {}", m.verdicts.summary());
    for e in errors {
        let _ = writeln!(header, "// oracle: {e}");
    }
    let _ = writeln!(header, "// replay: mi fuzz --seed {seed} --replay {index}");
    header + &mutant.emit_c(&format!("minimized mutant (seed={seed} case={index})"))
}

/// Per-case sweep result: index, kind, predicted verdicts, oracle
/// errors, and — for failures — the minimized repro source plus the
/// number of shrink probes.
type CaseResult = (u64, &'static str, Verdicts, Vec<String>, Option<(String, u64)>);

/// Runs the full fuzzing sweep.
pub fn fuzz(opts: &FuzzOpts) -> FuzzReport {
    let indices: Vec<u64> = (0..opts.cases).collect();
    let vm = memvm::VmConfig { backend: opts.backend, ..memvm::VmConfig::default() };
    let results: Vec<CaseResult> = bench::driver::par_map(opts.jobs, &indices, |_, &index| {
        let (safe, mutant) = case_programs(opts.seed, index);
        let m = mutant.mutation.clone().expect("mutant");
        let title = format!("fuzz seed={} case={index}", opts.seed);
        let mut errors = oracle::check_pair_with(&safe, &mutant, &title, vm);
        // Sampled dual-backend sweep: every eighth case also runs the
        // whole matrix under the other backend and byte-compares.
        if index % 8 == 0 {
            errors.extend(oracle::backend_divergence(&safe, &mutant, &title));
        }
        let minimized = if errors.is_empty() {
            None
        } else {
            let (min, attempts) =
                if opts.shrink { shrink_failing(&mutant) } else { (mutant.clone(), 0) };
            Some((repro_source(opts.seed, index, &min, &errors), attempts))
        };
        (index, m.kind.name(), m.verdicts, errors, minimized)
    });

    let mut report = FuzzReport { seed: opts.seed, cases: opts.cases, ..FuzzReport::default() };
    for mech in ["softbound", "lowfat", "redzone"] {
        report.caught_counts.insert(mech, 0);
    }
    for (index, kind, verdicts, errors, minimized) in results {
        *report.kind_counts.entry(kind).or_insert(0) += 1;
        for mech in ["softbound", "lowfat", "redzone"] {
            if verdicts.for_mech(mech) == mutate::Expect::Caught {
                *report.caught_counts.get_mut(mech).unwrap() += 1;
            }
        }
        if let Some((minimized_c, shrink_attempts)) = minimized {
            report.failures.push(Failure { index, kind, errors, minimized_c, shrink_attempts });
        }
    }

    if let Some(dir) = &opts.fail_dir {
        if !report.failures.is_empty() {
            std::fs::create_dir_all(dir).expect("create fail dir");
            for f in &report.failures {
                let path = dir.join(format!("case-{}-{}.c", f.index, f.kind));
                std::fs::write(&path, &f.minimized_c).expect("write repro");
            }
        }
    }

    report
}

/// Minimizes a failing mutant: keeps shrinking while the oracle still
/// errors on the (safe twin, candidate) pair. The safe twin is the
/// candidate minus its mutation, so safe-side failures (output
/// divergence, spurious traps) shrink just as mutant-side verdict
/// mismatches do.
fn shrink_failing(mutant: &ast::FuzzProgram) -> (ast::FuzzProgram, u64) {
    shrink::shrink(mutant, |cand| {
        let mut safe_twin = cand.clone();
        safe_twin.mutation = None;
        !oracle::check_pair(&safe_twin, cand, "shrink probe").is_empty()
    })
}

/// Verbose single-case replay: regenerates the pair, runs the matrix,
/// and renders sources plus per-configuration outcomes. The flag is
/// `true` when the oracle failed.
pub fn replay(seed: u64, index: u64) -> (String, bool) {
    let (safe, mutant) = case_programs(seed, index);
    let m = mutant.mutation.as_ref().unwrap();
    let mut s = String::new();
    let _ = writeln!(s, "=== fuzz case seed={seed} index={index} ===");
    let _ =
        writeln!(s, "mutation: {} on object {} ({})", m.kind.name(), m.obj, m.verdicts.summary());
    let errors = oracle::check_pair(&safe, &mutant, &format!("replay seed={seed} case={index}"));
    if errors.is_empty() {
        let _ = writeln!(s, "oracle: pass");
    } else {
        let _ = writeln!(s, "oracle: FAIL");
        for e in &errors {
            let _ = writeln!(s, "  {e}");
        }
    }
    let _ = writeln!(s, "--- safe program ---");
    s.push_str(&safe.emit_c(&format!("fuzz seed={seed} case={index} (safe)")));
    let _ = writeln!(s, "--- mutant ---");
    s.push_str(&mutant.emit_c(&format!("fuzz seed={seed} case={index} (mutant)")));
    (s, !errors.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_programs_are_deterministic() {
        let (s1, m1) = case_programs(42, 7);
        let (s2, m2) = case_programs(42, 7);
        assert_eq!(s1.emit_c("t"), s2.emit_c("t"));
        assert_eq!(m1.emit_c("t"), m2.emit_c("t"));
        assert!(m1.mutation.is_some() && s1.mutation.is_none());
    }
}
