//! Program representation for the generative fuzzer.
//!
//! A [`FuzzProgram`] is a small, structured model of a mini-C program:
//! a table of memory objects plus a list of statements operating on an
//! `x` accumulator. The model is *safe by construction* — every access
//! expressible through [`Stmt`] stays inside its object — and compiles
//! to C text via [`FuzzProgram::emit_c`]. Violations are never part of
//! the statement language; they are appended separately from a
//! [`crate::mutate::Mutation`], which keeps the safe/unsafe boundary
//! explicit and lets the shrinker delete arbitrary statements without
//! ever losing the injected bug.

use std::fmt::Write as _;

/// Byte size of the oversized allocation region. Chosen as exactly
/// 1 GiB: `lowfat::layout::class_for_request(1 << 30)` is `None` (the
/// one-past-the-end padding byte pushes it over the largest class), so
/// Low-Fat falls back to the plain allocator and the object is
/// *unchecked* — the guarantee gap the `OversizedOverflow` mutation
/// targets.
pub const OVERSIZED_BYTES: u64 = 1 << 30;

/// Element type of an object's primary array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Elem {
    /// 1-byte `char`.
    Char,
    /// 4-byte `int`.
    Int,
    /// 8-byte `long`.
    Long,
}

impl Elem {
    /// Width in bytes.
    pub fn width(self) -> u64 {
        match self {
            Elem::Char => 1,
            Elem::Int => 4,
            Elem::Long => 8,
        }
    }

    /// C type name.
    pub fn cname(self) -> &'static str {
        match self {
            Elem::Char => "char",
            Elem::Int => "int",
            Elem::Long => "long",
        }
    }

    /// Mask applied to values stored into this element type, keeping
    /// every value small, positive, and identical under any sign
    /// convention.
    pub fn mask(self) -> i64 {
        match self {
            Elem::Char => 63,
            _ => 255,
        }
    }
}

/// Where an object lives. The region decides both the C declaration and
/// which allocator (and therefore which protection layout) each
/// mechanism applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// File-scope global.
    Global,
    /// `main`-frame array.
    Stack,
    /// `malloc`ed.
    Heap,
    /// `calloc`ed (zero-initialized; the generator skips the init loop).
    HeapCalloc,
    /// A >1 GiB `malloc` that overflows Low-Fat's largest size class.
    /// Only the first `len` elements are ever touched by safe code.
    HeapOversized,
}

impl Region {
    /// Declaration-name prefix (`g0`, `s1`, `h2`, `c3`, `v4`).
    pub fn prefix(self) -> char {
        match self {
            Region::Global => 'g',
            Region::Stack => 's',
            Region::Heap => 'h',
            Region::HeapCalloc => 'c',
            Region::HeapOversized => 'v',
        }
    }

    /// Whether the object is heap-allocated (declared as a pointer).
    pub fn is_heap(self) -> bool {
        matches!(self, Region::Heap | Region::HeapCalloc | Region::HeapOversized)
    }
}

/// One memory object of the program.
#[derive(Clone, Debug)]
pub struct Obj {
    /// Element type of the primary array. Struct-wrapped objects
    /// (`tail.is_some()`) are always `Long` so the layout has no
    /// padding holes.
    pub elem: Elem,
    /// Element count of the primary array. For `HeapOversized` this is
    /// the small prefix safe code touches, not the allocation size.
    pub len: u64,
    /// Allocation region.
    pub region: Region,
    /// `Some(t)`: the object is `struct stN { long arr[len]; long tail[t]; }`.
    /// Struct objects are the substrate for intra-object overflow
    /// mutations (`arr[len + k]` lands in `tail` — inside the object).
    pub tail: Option<u64>,
}

impl Obj {
    /// Total allocation size in bytes.
    pub fn size(&self) -> u64 {
        match (self.region, self.tail) {
            (Region::HeapOversized, _) => OVERSIZED_BYTES,
            (_, Some(t)) => {
                assert_eq!(self.elem, Elem::Long, "struct objects are long-only");
                (self.len + t) * 8
            }
            (_, None) => self.len * self.elem.width(),
        }
    }

    /// Declaration name for object index `i`.
    pub fn name(&self, i: usize) -> String {
        format!("{}{}", self.region.prefix(), i)
    }

    /// C expression for element `idx` of the primary array.
    pub fn access(&self, i: usize, idx: &str) -> String {
        let n = self.name(i);
        match (self.tail, self.region.is_heap()) {
            (None, _) => format!("{n}[{idx}]"),
            (Some(_), false) => format!("{n}.arr[{idx}]"),
            (Some(_), true) => format!("{n}->arr[{idx}]"),
        }
    }

    /// C expression for element `idx` of the struct tail.
    pub fn tail_access(&self, i: usize, idx: &str) -> String {
        let n = self.name(i);
        if self.region.is_heap() {
            format!("{n}->tail[{idx}]")
        } else {
            format!("{n}.tail[{idx}]")
        }
    }

    /// C expression evaluating to a pointer to the first array element
    /// (the canonical base pointer handed to helper calls).
    pub fn base(&self, i: usize) -> String {
        format!("&{}", self.access(i, "0"))
    }
}

/// Arithmetic rewrites of the accumulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    /// `x = x + k`
    Add,
    /// `x = x - k`
    Sub,
    /// `x = x * k`
    Mul,
    /// `x = x ^ k`
    Xor,
}

impl ArithOp {
    fn c(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Xor => "^",
        }
    }
}

/// A safe-by-construction statement. Indices are object-table indices;
/// every element index carried here is validated in-bounds by the
/// generator (and re-checked by [`FuzzProgram::validate`]).
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `x = x <op> k;`
    Arith {
        /// Operator.
        op: ArithOp,
        /// Constant operand.
        k: i64,
    },
    /// `obj[idx] = x & mask;`
    Store {
        /// Object index.
        obj: usize,
        /// In-bounds element index.
        idx: u64,
    },
    /// `x += obj[idx];`
    Load {
        /// Object index.
        obj: usize,
        /// In-bounds element index.
        idx: u64,
    },
    /// `for (i < len) obj[i] = (i * mul + add) & mask;`
    LoopFill {
        /// Object index.
        obj: usize,
        /// Per-element multiplier.
        mul: i64,
        /// Per-element offset.
        add: i64,
    },
    /// `for (i < len) x += obj[i];`
    LoopSum {
        /// Object index.
        obj: usize,
    },
    /// A strided pointer walk over a `long` array:
    /// `long *wp = &obj[start]; for (count) { x += *wp; wp = wp + step; }`
    /// The final pointer value is at most one-past-the-end, so Low-Fat's
    /// escape invariant holds on every iteration.
    PtrWalk {
        /// Object index (must be `Long`-element).
        obj: usize,
        /// Start element.
        start: u64,
        /// Stride in elements.
        step: u64,
        /// Iterations; `start + step * count <= len`.
        count: u64,
    },
    /// `long *sp = (x & 1) ? &a[ia] : &b[ib]; x += *sp;` — a
    /// select-merged pointer whose witness must follow the select.
    SelectDeref {
        /// First candidate object (`Long`).
        a: usize,
        /// In-bounds index into `a`.
        ia: u64,
        /// Second candidate object (`Long`).
        b: usize,
        /// In-bounds index into `b`.
        ib: u64,
    },
    /// `long *pp; if (..) pp = &a[ia]; else pp = &b[ib]; x += *pp;` — a
    /// phi-merged pointer (control-flow join witness).
    PhiDeref {
        /// First candidate object (`Long`).
        a: usize,
        /// In-bounds index into `a`.
        ia: u64,
        /// Second candidate object (`Long`).
        b: usize,
        /// In-bounds index into `b`.
        ib: u64,
    },
    /// `long t = (long)&obj[idx]; long *ip = (long*)t; x += *ip;` — an
    /// inttoptr round-trip (SoftBound assigns wide bounds, §4.4).
    IntPtr {
        /// Object index (`Long`).
        obj: usize,
        /// In-bounds element index.
        idx: u64,
    },
    /// `x += f_sum(n);` — pure arithmetic helper call.
    CallSum {
        /// Loop trip count inside the helper.
        n: u64,
    },
    /// `x += f_peek(&obj[0], idx);` — pointer argument crosses a call.
    CallPeek {
        /// Object index (`Long`).
        obj: usize,
        /// In-bounds element index.
        idx: u64,
    },
    /// `f_poke(&obj[0], idx, x & 255);` — write through an argument.
    CallPoke {
        /// Object index (`Long`).
        obj: usize,
        /// In-bounds element index.
        idx: u64,
    },
    /// `x += f_range(&obj[0], n);` — helper loops over a prefix.
    CallRange {
        /// Object index (`Long`).
        obj: usize,
        /// Prefix length, `n <= len`.
        n: u64,
    },
    /// `x += f_rec(n);` — recursion with a per-frame stack array.
    CallRec {
        /// Recursion depth.
        n: u64,
    },
    /// `memcpy(&dst[0], &src[0], n);` — `n` bytes, in-bounds for both.
    MemCpy {
        /// Destination object index.
        dst: usize,
        /// Source object index (distinct from `dst`).
        src: usize,
        /// Byte count, `<=` both accessible sizes.
        n: u64,
    },
    /// `memset(&dst[0], byte, n);` — `n` in-bounds bytes.
    MemSet {
        /// Destination object index.
        dst: usize,
        /// Fill byte.
        byte: u8,
        /// Byte count, `<=` accessible size.
        n: u64,
    },
    /// `obj.tail[idx] = x & 255;` (struct objects only).
    TailStore {
        /// Object index (must have a tail).
        obj: usize,
        /// In-bounds tail index.
        idx: u64,
    },
    /// `x += obj.tail[idx];` (struct objects only).
    TailLoad {
        /// Object index (must have a tail).
        obj: usize,
        /// In-bounds tail index.
        idx: u64,
    },
    /// `if ((x & 7) < k) { .. } else { .. }`
    If {
        /// Comparison bound in `[1, 8]`.
        k: u64,
        /// Taken branch.
        then_s: Vec<Stmt>,
        /// Else branch (omitted from the C text when empty).
        else_s: Vec<Stmt>,
    },
    /// `for (iD = 0; iD < n; iD += 1) { .. }`
    Loop {
        /// Trip count.
        n: u64,
        /// Body.
        body: Vec<Stmt>,
    },
}

/// A complete generated program: objects + statements (+ an optional
/// injected violation, attached by the mutator).
#[derive(Clone, Debug)]
pub struct FuzzProgram {
    /// Object table; statement indices refer into this.
    pub objs: Vec<Obj>,
    /// Body of `main` between the init loops and the checksum epilogue.
    pub body: Vec<Stmt>,
    /// Initial accumulator value.
    pub x0: i64,
    /// Per-object init-loop parameters `(mul, add)`, same length as
    /// `objs`.
    pub init: Vec<(i64, i64)>,
    /// The injected violation, if this is a mutant.
    pub mutation: Option<crate::mutate::Mutation>,
}

/// Which helper functions a program's C text must define.
#[derive(Default)]
struct Helpers {
    sum: bool,
    peek: bool,
    poke: bool,
    range: bool,
    rec: bool,
}

impl Helpers {
    fn scan(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::CallSum { .. } => self.sum = true,
                Stmt::CallPeek { .. } => self.peek = true,
                Stmt::CallPoke { .. } => self.poke = true,
                Stmt::CallRange { .. } => self.range = true,
                Stmt::CallRec { .. } => self.rec = true,
                Stmt::If { then_s, else_s, .. } => {
                    self.scan(then_s);
                    self.scan(else_s);
                }
                Stmt::Loop { body, .. } => self.scan(body),
                _ => {}
            }
        }
    }
}

impl FuzzProgram {
    /// Emits the program as mini-C text. Deterministic: the same program
    /// value always produces byte-identical source.
    pub fn emit_c(&self, title: &str) -> String {
        let mut c = String::new();
        let _ = writeln!(c, "// {title}");

        // Struct declarations.
        for (i, o) in self.objs.iter().enumerate() {
            if let Some(t) = o.tail {
                let _ = writeln!(c, "struct st{i} {{ long arr[{}]; long tail[{t}]; }};", o.len);
            }
        }

        // Helper functions (only the ones used).
        let mut h = Helpers::default();
        h.scan(&self.body);
        if let Some(m) = &self.mutation {
            if m.uses_peek() {
                h.peek = true;
            }
        }
        if h.sum {
            c.push_str(
                "long f_sum(long n) {\n    long s = 0;\n    for (long i = 0; i < n; i += 1) s += i * 3;\n    return s;\n}\n",
            );
        }
        if h.peek {
            c.push_str("long f_peek(long *p, long i) { return p[i]; }\n");
        }
        if h.poke {
            c.push_str("void f_poke(long *p, long i, long v) { p[i] = v; }\n");
        }
        if h.range {
            c.push_str(
                "long f_range(long *p, long n) {\n    long s = 0;\n    for (long i = 0; i < n; i += 1) s += p[i];\n    return s;\n}\n",
            );
        }
        if h.rec {
            c.push_str(
                "long f_rec(long n) {\n    long t[4];\n    t[n & 3] = n;\n    if (n <= 0) return 0;\n    return t[n & 3] + f_rec(n - 1);\n}\n",
            );
        }

        // Globals.
        for (i, o) in self.objs.iter().enumerate() {
            if o.region == Region::Global {
                if o.tail.is_some() {
                    let _ = writeln!(c, "struct st{i} {};", o.name(i));
                } else {
                    let _ = writeln!(c, "{} {}[{}];", o.elem.cname(), o.name(i), o.len);
                }
            }
        }

        c.push_str("long main(void) {\n");
        let _ = writeln!(c, "    long x = {};", self.x0);

        // Local declarations.
        for (i, o) in self.objs.iter().enumerate() {
            let n = o.name(i);
            let ty = o.elem.cname();
            match (o.region, o.tail) {
                (Region::Global, _) => {}
                (Region::Stack, None) => {
                    let _ = writeln!(c, "    {ty} {n}[{}];", o.len);
                }
                (Region::Stack, Some(_)) => {
                    let _ = writeln!(c, "    struct st{i} {n};");
                }
                (Region::Heap, None) => {
                    let _ = writeln!(c, "    {ty} *{n} = ({ty}*)malloc({} * sizeof({ty}));", o.len);
                }
                (Region::Heap, Some(_)) => {
                    let _ = writeln!(
                        c,
                        "    struct st{i} *{n} = (struct st{i}*)malloc(sizeof(struct st{i}));"
                    );
                }
                (Region::HeapCalloc, _) => {
                    let _ = writeln!(c, "    {ty} *{n} = ({ty}*)calloc({}, sizeof({ty}));", o.len);
                }
                (Region::HeapOversized, _) => {
                    let _ = writeln!(c, "    {ty} *{n} = ({ty}*)malloc({OVERSIZED_BYTES});");
                }
            }
        }

        // Init loops (calloc objects are already zero).
        for (i, o) in self.objs.iter().enumerate() {
            if o.region == Region::HeapCalloc {
                continue;
            }
            let (mul, add) = self.init[i];
            let _ = writeln!(
                c,
                "    for (long i = 0; i < {}; i += 1) {} = (i * {mul} + {add}) & {};",
                o.len,
                o.access(i, "i"),
                o.elem.mask()
            );
            if let Some(t) = o.tail {
                let _ = writeln!(
                    c,
                    "    for (long i = 0; i < {t}; i += 1) {} = (i * {add} + {mul}) & 255;",
                    o.tail_access(i, "i"),
                );
            }
        }

        // Body.
        for s in &self.body {
            self.emit_stmt(&mut c, s, 1, 0);
        }

        // Checksum epilogue: read back every object (weighted so element
        // order matters), then print the accumulator.
        c.push_str("    long chk = 0;\n");
        for (i, o) in self.objs.iter().enumerate() {
            let _ = writeln!(
                c,
                "    for (long i = 0; i < {}; i += 1) chk += {} * (i + 1);",
                o.len,
                o.access(i, "i"),
            );
            if let Some(t) = o.tail {
                let _ = writeln!(
                    c,
                    "    for (long i = 0; i < {t}; i += 1) chk += {} * (i + 3);",
                    o.tail_access(i, "i"),
                );
            }
        }
        c.push_str("    print_i64(chk);\n    print_i64(x);\n");

        // The injected violation, if any, goes last: nothing after it
        // depends on it except its own liveness print, so the optimizer
        // cannot reorder it relative to the safe computation.
        if let Some(m) = &self.mutation {
            m.emit(&mut c, &self.objs);
        }

        c.push_str("    return 0;\n}\n");
        c
    }

    fn emit_stmt(&self, c: &mut String, s: &Stmt, ind: usize, depth: usize) {
        let pad = "    ".repeat(ind);
        match s {
            Stmt::Arith { op, k } => {
                let _ = writeln!(c, "{pad}x = x {} {k};", op.c());
            }
            Stmt::Store { obj, idx } => {
                let o = &self.objs[*obj];
                let _ = writeln!(
                    c,
                    "{pad}{} = x & {};",
                    o.access(*obj, &idx.to_string()),
                    o.elem.mask()
                );
            }
            Stmt::Load { obj, idx } => {
                let o = &self.objs[*obj];
                let _ = writeln!(c, "{pad}x += {};", o.access(*obj, &idx.to_string()));
            }
            Stmt::LoopFill { obj, mul, add } => {
                let o = &self.objs[*obj];
                let v = format!("i{depth}");
                let _ = writeln!(
                    c,
                    "{pad}for (long {v} = 0; {v} < {}; {v} += 1) {} = ({v} * {mul} + {add}) & {};",
                    o.len,
                    o.access(*obj, &v),
                    o.elem.mask()
                );
            }
            Stmt::LoopSum { obj } => {
                let o = &self.objs[*obj];
                let v = format!("i{depth}");
                let _ = writeln!(
                    c,
                    "{pad}for (long {v} = 0; {v} < {}; {v} += 1) x += {};",
                    o.len,
                    o.access(*obj, &v)
                );
            }
            Stmt::PtrWalk { obj, start, step, count } => {
                let o = &self.objs[*obj];
                let v = format!("i{depth}");
                let _ = writeln!(c, "{pad}{{");
                let _ = writeln!(c, "{pad}    long *wp = &{};", o.access(*obj, &start.to_string()));
                let _ = writeln!(
                    c,
                    "{pad}    for (long {v} = 0; {v} < {count}; {v} += 1) {{ x += *wp; wp = wp + {step}; }}"
                );
                let _ = writeln!(c, "{pad}}}");
            }
            Stmt::SelectDeref { a, ia, b, ib } => {
                let (oa, ob) = (&self.objs[*a], &self.objs[*b]);
                let _ = writeln!(c, "{pad}{{");
                let _ = writeln!(
                    c,
                    "{pad}    long *sp = (x & 1) ? &{} : &{};",
                    oa.access(*a, &ia.to_string()),
                    ob.access(*b, &ib.to_string())
                );
                let _ = writeln!(c, "{pad}    x += *sp;");
                let _ = writeln!(c, "{pad}}}");
            }
            Stmt::PhiDeref { a, ia, b, ib } => {
                let (oa, ob) = (&self.objs[*a], &self.objs[*b]);
                let _ = writeln!(c, "{pad}{{");
                let _ = writeln!(c, "{pad}    long *pp;");
                let _ = writeln!(
                    c,
                    "{pad}    if ((x & 3) > 1) pp = &{}; else pp = &{};",
                    oa.access(*a, &ia.to_string()),
                    ob.access(*b, &ib.to_string())
                );
                let _ = writeln!(c, "{pad}    x += *pp;");
                let _ = writeln!(c, "{pad}}}");
            }
            Stmt::IntPtr { obj, idx } => {
                let o = &self.objs[*obj];
                let _ = writeln!(c, "{pad}{{");
                let _ =
                    writeln!(c, "{pad}    long ia = (long)&{};", o.access(*obj, &idx.to_string()));
                let _ = writeln!(c, "{pad}    long *ip = (long*)ia;");
                let _ = writeln!(c, "{pad}    x += *ip;");
                let _ = writeln!(c, "{pad}}}");
            }
            Stmt::CallSum { n } => {
                let _ = writeln!(c, "{pad}x += f_sum({n});");
            }
            Stmt::CallPeek { obj, idx } => {
                let o = &self.objs[*obj];
                let _ = writeln!(c, "{pad}x += f_peek({}, {idx});", o.base(*obj));
            }
            Stmt::CallPoke { obj, idx } => {
                let o = &self.objs[*obj];
                let _ = writeln!(c, "{pad}f_poke({}, {idx}, x & 255);", o.base(*obj));
            }
            Stmt::CallRange { obj, n } => {
                let o = &self.objs[*obj];
                let _ = writeln!(c, "{pad}x += f_range({}, {n});", o.base(*obj));
            }
            Stmt::CallRec { n } => {
                let _ = writeln!(c, "{pad}x += f_rec({n});");
            }
            Stmt::MemCpy { dst, src, n } => {
                let (od, os) = (&self.objs[*dst], &self.objs[*src]);
                let _ = writeln!(c, "{pad}memcpy({}, {}, {n});", od.base(*dst), os.base(*src));
            }
            Stmt::MemSet { dst, byte, n } => {
                let o = &self.objs[*dst];
                let _ = writeln!(c, "{pad}memset({}, {byte}, {n});", o.base(*dst));
            }
            Stmt::TailStore { obj, idx } => {
                let o = &self.objs[*obj];
                let _ = writeln!(c, "{pad}{} = x & 255;", o.tail_access(*obj, &idx.to_string()));
            }
            Stmt::TailLoad { obj, idx } => {
                let o = &self.objs[*obj];
                let _ = writeln!(c, "{pad}x += {};", o.tail_access(*obj, &idx.to_string()));
            }
            Stmt::If { k, then_s, else_s } => {
                let _ = writeln!(c, "{pad}if ((x & 7) < {k}) {{");
                for s in then_s {
                    self.emit_stmt(c, s, ind + 1, depth);
                }
                if else_s.is_empty() {
                    let _ = writeln!(c, "{pad}}}");
                } else {
                    let _ = writeln!(c, "{pad}}} else {{");
                    for s in else_s {
                        self.emit_stmt(c, s, ind + 1, depth);
                    }
                    let _ = writeln!(c, "{pad}}}");
                }
            }
            Stmt::Loop { n, body } => {
                let v = format!("i{depth}");
                let _ = writeln!(c, "{pad}for (long {v} = 0; {v} < {n}; {v} += 1) {{");
                for s in body {
                    self.emit_stmt(c, s, ind + 1, depth + 1);
                }
                let _ = writeln!(c, "{pad}}}");
            }
        }
    }

    /// Structural well-formedness: every index a statement carries is
    /// in-bounds for its object, every referenced object supports the
    /// operation. The generator upholds this by construction; the
    /// shrinker re-validates after every candidate edit.
    pub fn validate(&self) -> Result<(), String> {
        assert_eq!(self.init.len(), self.objs.len(), "init table length");
        validate_stmts(&self.objs, &self.body)
    }
}

fn validate_stmts(objs: &[Obj], stmts: &[Stmt]) -> Result<(), String> {
    for s in stmts {
        validate_stmt(objs, s)?;
    }
    Ok(())
}

fn validate_stmt(objs: &[Obj], s: &Stmt) -> Result<(), String> {
    let obj = |i: usize| -> Result<&Obj, String> {
        objs.get(i).ok_or_else(|| format!("object index {i} out of table"))
    };
    let idx_ok = |i: usize, idx: u64| -> Result<(), String> {
        if idx >= obj(i)?.len {
            return Err(format!("index {idx} not below len {}", objs[i].len));
        }
        Ok(())
    };
    let long_only = |i: usize| -> Result<(), String> {
        if obj(i)?.elem != Elem::Long {
            return Err(format!("object {i} is not long-element"));
        }
        Ok(())
    };
    match s {
        Stmt::Arith { .. } | Stmt::CallSum { .. } | Stmt::CallRec { .. } => Ok(()),
        Stmt::Store { obj: o, idx } | Stmt::Load { obj: o, idx } => idx_ok(*o, *idx),
        Stmt::LoopFill { obj: o, .. } | Stmt::LoopSum { obj: o } => obj(*o).map(|_| ()),
        Stmt::PtrWalk { obj: o, start, step, count } => {
            long_only(*o)?;
            if start + step * count > obj(*o)?.len {
                return Err("pointer walk exits the array".into());
            }
            Ok(())
        }
        Stmt::SelectDeref { a, ia, b, ib } | Stmt::PhiDeref { a, ia, b, ib } => {
            long_only(*a)?;
            long_only(*b)?;
            idx_ok(*a, *ia)?;
            idx_ok(*b, *ib)
        }
        Stmt::IntPtr { obj: o, idx }
        | Stmt::CallPeek { obj: o, idx }
        | Stmt::CallPoke { obj: o, idx } => {
            long_only(*o)?;
            idx_ok(*o, *idx)
        }
        Stmt::CallRange { obj: o, n } => {
            long_only(*o)?;
            if *n > obj(*o)?.len {
                return Err("range sum exceeds len".into());
            }
            Ok(())
        }
        Stmt::MemCpy { dst, src, n } => {
            if dst == src {
                return Err("memcpy with aliasing operands".into());
            }
            let cap = |i: usize| -> Result<u64, String> {
                let o = obj(i)?;
                Ok(o.len * o.elem.width())
            };
            if *n > cap(*dst)?.min(cap(*src)?) {
                return Err("memcpy length exceeds an operand".into());
            }
            Ok(())
        }
        Stmt::MemSet { dst, n, .. } => {
            let o = obj(*dst)?;
            if *n > o.len * o.elem.width() {
                return Err("memset length exceeds object".into());
            }
            Ok(())
        }
        Stmt::TailStore { obj: o, idx } | Stmt::TailLoad { obj: o, idx } => match obj(*o)?.tail {
            Some(t) if *idx < t => Ok(()),
            Some(t) => Err(format!("tail index {idx} not below {t}")),
            None => Err(format!("object {o} has no tail")),
        },
        Stmt::If { then_s, else_s, .. } => {
            validate_stmts(objs, then_s)?;
            validate_stmts(objs, else_s)
        }
        Stmt::Loop { body, .. } => validate_stmts(objs, body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FuzzProgram {
        FuzzProgram {
            objs: vec![Obj { elem: Elem::Long, len: 4, region: Region::Global, tail: None }],
            body: vec![
                Stmt::Arith { op: ArithOp::Add, k: 3 },
                Stmt::Store { obj: 0, idx: 2 },
                Stmt::Load { obj: 0, idx: 2 },
            ],
            x0: 7,
            init: vec![(3, 1)],
            mutation: None,
        }
    }

    #[test]
    fn emission_is_deterministic() {
        let p = tiny();
        assert_eq!(p.emit_c("t"), p.emit_c("t"));
        assert!(p.emit_c("t").contains("long g0[4];"));
    }

    #[test]
    fn validate_rejects_oob_index() {
        let mut p = tiny();
        p.body.push(Stmt::Load { obj: 0, idx: 4 });
        assert!(p.validate().is_err());
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn oversized_object_overflows_lowfat_classes() {
        assert!(lowfat::layout::class_for_request(OVERSIZED_BYTES).is_none());
        assert!(lowfat::layout::class_for_request(OVERSIZED_BYTES / 2).is_some());
    }
}
