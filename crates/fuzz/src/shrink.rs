//! Greedy structural shrinking of failing fuzz programs.
//!
//! The shrinker works on the *model* ([`FuzzProgram`]), not the C text:
//! every candidate edit is well-formed by construction (and
//! re-validated), so the minimized repro is still a valid program with
//! the original mutation intact. Candidates, in pass order:
//!
//! 1. delete a statement (deepest-first, so nested bodies drain before
//!    their containers),
//! 2. hoist an `if`'s branches or a loop's body into its place (drops
//!    the control structure, keeps the work),
//! 3. reduce a loop's trip count to 1,
//! 4. zero an arithmetic constant,
//! 5. drop an object no statement references.
//!
//! Passes repeat until a full pass accepts nothing. Every accepted edit
//! strictly decreases the lexicographic measure (statement count, sum
//! of loop trip counts, count of nonzero arithmetic constants, object
//! count), so shrinking always terminates; because acceptance demands
//! `still_fails`, the failure is preserved; and because candidate order
//! is deterministic, a fixpoint re-shrinks to itself (idempotence).
//! All three properties are unit-tested below against synthetic
//! predicates — no oracle required.

use crate::ast::{FuzzProgram, Stmt};
use crate::mutate::{MutKind, Mutation};

/// Shrinks `p` while `still_fails` holds. Returns the minimized program
/// and the number of candidate programs tried (each one costs a
/// predicate evaluation — for the real oracle, a full matrix run).
pub fn shrink(p: &FuzzProgram, still_fails: impl Fn(&FuzzProgram) -> bool) -> (FuzzProgram, u64) {
    let mut cur = p.clone();
    let mut attempts = 0u64;
    loop {
        let mut accepted = false;
        for cand in candidates(&cur) {
            if cand.validate().is_err() {
                continue;
            }
            attempts += 1;
            if still_fails(&cand) {
                cur = cand;
                accepted = true;
                break; // restart candidate enumeration from the smaller program
            }
        }
        if !accepted {
            return (cur, attempts);
        }
    }
}

/// All candidate edits of `p`, smallest-result-first within each class.
fn candidates(p: &FuzzProgram) -> Vec<FuzzProgram> {
    let mut out = Vec::new();
    let paths = collect_paths(&p.body);

    // 1. Statement deletion, deepest paths first so inner statements
    // disappear before the blocks containing them.
    for path in paths.iter().rev() {
        let mut q = p.clone();
        delete_at(&mut q.body, path);
        out.push(q);
    }

    // 2. If-hoisting and 3./4. constant shrinking, in path order.
    for path in &paths {
        match stmt_at(&p.body, path) {
            Stmt::If { then_s, else_s, .. } => {
                let mut repl = then_s.clone();
                repl.extend(else_s.iter().cloned());
                let mut q = p.clone();
                replace_at(&mut q.body, path, repl);
                out.push(q);
            }
            Stmt::Loop { n, body } => {
                // Hoist the body (no statement references the loop
                // variable, so this is always well-formed), and
                // independently try a single-trip loop.
                let mut q = p.clone();
                replace_at(&mut q.body, path, body.clone());
                out.push(q);
                if *n > 1 {
                    let mut q = p.clone();
                    replace_at(&mut q.body, path, vec![Stmt::Loop { n: 1, body: body.clone() }]);
                    out.push(q);
                }
            }
            Stmt::Arith { op, k } if *k != 0 => {
                let mut q = p.clone();
                replace_at(&mut q.body, path, vec![Stmt::Arith { op: *op, k: 0 }]);
                out.push(q);
            }
            _ => {}
        }
    }

    // 5. Unused-object removal (highest index first keeps remapping a
    // single decrement).
    let used = used_objects(p);
    for i in (0..p.objs.len()).rev() {
        if !used.contains(&i) {
            out.push(remove_object(p, i));
        }
    }

    out
}

/// Paths (child-index sequences) of every statement, in DFS pre-order.
fn collect_paths(stmts: &[Stmt]) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    fn go(stmts: &[Stmt], prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        for (i, s) in stmts.iter().enumerate() {
            prefix.push(i);
            out.push(prefix.clone());
            match s {
                Stmt::If { then_s, else_s, .. } => {
                    // Branch index 0 = then, 1 = else.
                    prefix.push(0);
                    go(then_s, prefix, out);
                    prefix.pop();
                    prefix.push(1);
                    go(else_s, prefix, out);
                    prefix.pop();
                }
                Stmt::Loop { body, .. } => {
                    prefix.push(0);
                    go(body, prefix, out);
                    prefix.pop();
                }
                _ => {}
            }
            prefix.pop();
        }
    }
    go(stmts, &mut Vec::new(), &mut out);
    out
}

/// The child list a path's final index points into, resolved mutably.
/// Paths alternate statement index / branch selector (see
/// [`collect_paths`]).
fn resolve<'a>(stmts: &'a mut Vec<Stmt>, path: &[usize]) -> (&'a mut Vec<Stmt>, usize) {
    if path.len() == 1 {
        return (stmts, path[0]);
    }
    let (idx, rest) = (path[0], &path[1..]);
    match &mut stmts[idx] {
        Stmt::If { then_s, else_s, .. } => {
            let branch = if rest[0] == 0 { then_s } else { else_s };
            resolve(branch, &rest[1..])
        }
        Stmt::Loop { body, .. } => resolve(body, &rest[1..]),
        other => unreachable!("path descends into leaf {other:?}"),
    }
}

fn stmt_at<'a>(stmts: &'a [Stmt], path: &[usize]) -> &'a Stmt {
    if path.len() == 1 {
        return &stmts[path[0]];
    }
    let (idx, rest) = (path[0], &path[1..]);
    match &stmts[idx] {
        Stmt::If { then_s, else_s, .. } => {
            let branch = if rest[0] == 0 { then_s } else { else_s };
            stmt_at(branch, &rest[1..])
        }
        Stmt::Loop { body, .. } => stmt_at(body, &rest[1..]),
        other => unreachable!("path descends into leaf {other:?}"),
    }
}

fn delete_at(stmts: &mut Vec<Stmt>, path: &[usize]) {
    let (list, i) = resolve(stmts, path);
    list.remove(i);
}

fn replace_at(stmts: &mut Vec<Stmt>, path: &[usize], with: Vec<Stmt>) {
    let (list, i) = resolve(stmts, path);
    list.splice(i..=i, with);
}

/// Object indices referenced by any statement or the mutation.
fn used_objects(p: &FuzzProgram) -> std::collections::BTreeSet<usize> {
    let mut used = std::collections::BTreeSet::new();
    fn scan(stmts: &[Stmt], used: &mut std::collections::BTreeSet<usize>) {
        for s in stmts {
            match s {
                Stmt::Store { obj, .. }
                | Stmt::Load { obj, .. }
                | Stmt::LoopFill { obj, .. }
                | Stmt::LoopSum { obj }
                | Stmt::PtrWalk { obj, .. }
                | Stmt::IntPtr { obj, .. }
                | Stmt::CallPeek { obj, .. }
                | Stmt::CallPoke { obj, .. }
                | Stmt::CallRange { obj, .. }
                | Stmt::TailStore { obj, .. }
                | Stmt::TailLoad { obj, .. } => {
                    used.insert(*obj);
                }
                Stmt::SelectDeref { a, b, .. } | Stmt::PhiDeref { a, b, .. } => {
                    used.insert(*a);
                    used.insert(*b);
                }
                Stmt::MemCpy { dst, src, .. } => {
                    used.insert(*dst);
                    used.insert(*src);
                }
                Stmt::MemSet { dst, .. } => {
                    used.insert(*dst);
                }
                Stmt::If { then_s, else_s, .. } => {
                    scan(then_s, used);
                    scan(else_s, used);
                }
                Stmt::Loop { body, .. } => scan(body, used),
                Stmt::Arith { .. } | Stmt::CallSum { .. } | Stmt::CallRec { .. } => {}
            }
        }
    }
    scan(&p.body, &mut used);
    if let Some(m) = &p.mutation {
        used.insert(m.obj);
        if m.kind == MutKind::UnderflowFar {
            // The far-underflow probe is defined only because a pad
            // object is carved immediately before the target (see
            // `mutate`); dropping it would move the probe onto
            // arbitrary neighbour memory.
            used.insert(m.obj - 1);
        }
    }
    used
}

/// Removes object `gone` and decrements every index above it.
fn remove_object(p: &FuzzProgram, gone: usize) -> FuzzProgram {
    let mut q = p.clone();
    q.objs.remove(gone);
    q.init.remove(gone);
    let fix = |i: &mut usize| {
        debug_assert_ne!(*i, gone, "removing a used object");
        if *i > gone {
            *i -= 1;
        }
    };
    fn walk(stmts: &mut [Stmt], fix: &impl Fn(&mut usize)) {
        for s in stmts {
            match s {
                Stmt::Store { obj, .. }
                | Stmt::Load { obj, .. }
                | Stmt::LoopFill { obj, .. }
                | Stmt::LoopSum { obj }
                | Stmt::PtrWalk { obj, .. }
                | Stmt::IntPtr { obj, .. }
                | Stmt::CallPeek { obj, .. }
                | Stmt::CallPoke { obj, .. }
                | Stmt::CallRange { obj, .. }
                | Stmt::TailStore { obj, .. }
                | Stmt::TailLoad { obj, .. } => fix(obj),
                Stmt::SelectDeref { a, b, .. } | Stmt::PhiDeref { a, b, .. } => {
                    fix(a);
                    fix(b);
                }
                Stmt::MemCpy { dst, src, .. } => {
                    fix(dst);
                    fix(src);
                }
                Stmt::MemSet { dst, .. } => fix(dst),
                Stmt::If { then_s, else_s, .. } => {
                    walk(then_s, fix);
                    walk(else_s, fix);
                }
                Stmt::Loop { body, .. } => walk(body, fix),
                Stmt::Arith { .. } | Stmt::CallSum { .. } | Stmt::CallRec { .. } => {}
            }
        }
    }
    walk(&mut q.body, &fix);
    if let Some(Mutation { obj, .. }) = &mut q.mutation {
        fix(obj);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ArithOp, Elem, Obj, Region};
    use crate::gen::gen_program;
    use testutil::Rng;

    /// Whether any statement (recursively) is a `Load` of object 0.
    fn has_load_of_0(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Load { obj: 0, .. } => true,
            Stmt::If { then_s, else_s, .. } => has_load_of_0(then_s) || has_load_of_0(else_s),
            Stmt::Loop { body, .. } => has_load_of_0(body),
            _ => false,
        })
    }

    fn big_program() -> FuzzProgram {
        let p = FuzzProgram {
            objs: vec![
                Obj { elem: Elem::Long, len: 8, region: Region::Global, tail: None },
                Obj { elem: Elem::Long, len: 8, region: Region::Heap, tail: None },
            ],
            body: vec![
                Stmt::Arith { op: ArithOp::Add, k: 5 },
                Stmt::Loop {
                    n: 6,
                    body: vec![
                        Stmt::Arith { op: ArithOp::Mul, k: 3 },
                        Stmt::If {
                            k: 4,
                            then_s: vec![Stmt::Load { obj: 0, idx: 2 }],
                            else_s: vec![Stmt::Store { obj: 1, idx: 1 }],
                        },
                    ],
                },
                Stmt::LoopSum { obj: 1 },
                Stmt::CallSum { n: 9 },
            ],
            x0: 1,
            init: vec![(1, 0), (2, 1)],
            mutation: None,
        };
        p.validate().unwrap();
        p
    }

    #[test]
    fn shrink_terminates_and_minimizes() {
        let p = big_program();
        let (min, attempts) = shrink(&p, |q| has_load_of_0(&q.body));
        assert!(attempts > 0);
        // The predicate needs exactly one statement: the load itself,
        // hoisted out of the loop and the if.
        assert_eq!(count_stmts(&min.body), 1, "minimized to {:?}", min.body);
        assert!(matches!(min.body[0], Stmt::Load { obj: 0, idx: 2 }));
        // The unreferenced second object is gone.
        assert_eq!(min.objs.len(), 1);
    }

    #[test]
    fn shrink_preserves_the_failure() {
        let p = big_program();
        let (min, _) = shrink(&p, |q| has_load_of_0(&q.body));
        assert!(has_load_of_0(&min.body));
        assert!(min.validate().is_ok());
    }

    #[test]
    fn shrink_is_idempotent() {
        let p = big_program();
        let (once, _) = shrink(&p, |q| has_load_of_0(&q.body));
        let (twice, attempts) = shrink(&once, |q| has_load_of_0(&q.body));
        assert_eq!(format!("{once:?}"), format!("{twice:?}"));
        // The second run rejects every candidate: nothing to accept.
        assert!(attempts <= count_stmts(&once.body) as u64 + 4);
    }

    #[test]
    fn shrink_never_touches_the_mutation() {
        // Generated programs with a mutation attached keep it through
        // arbitrary shrinking (here: a predicate accepting everything,
        // i.e. maximal deletion).
        for i in 0..20 {
            let mut rng = Rng::for_case(17, i);
            let safe = gen_program(&mut rng);
            let mutant = crate::mutate::mutate(&safe, &mut rng);
            let want = mutant.mutation.clone().unwrap();
            let (min, _) = shrink(&mutant, |_| true);
            let got = min.mutation.as_ref().unwrap();
            assert_eq!(got.kind, want.kind, "case {i}");
            assert_eq!(got.verdicts, want.verdicts, "case {i}");
            // Everything deletable is gone; the mutation target object
            // survives.
            assert_eq!(count_stmts(&min.body), 0);
            assert!(got.obj < min.objs.len());
            assert!(min.validate().is_ok());
        }
    }

    fn count_stmts(stmts: &[Stmt]) -> usize {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::If { then_s, else_s, .. } => 1 + count_stmts(then_s) + count_stmts(else_s),
                Stmt::Loop { body, .. } => 1 + count_stmts(body),
                _ => 1,
            })
            .sum()
    }
}
