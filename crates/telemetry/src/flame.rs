//! Folded ("collapsed") call-stack accumulation in the flamegraph format.
//!
//! One entry per distinct stack: frames joined by `;` (root first) mapped to
//! a sample count. [`FoldedStacks::render`] emits the standard
//! `frame;frame;frame count` lines accepted by inferno / flamegraph.pl /
//! speedscope, sorted lexicographically so output is byte-stable.

use std::collections::BTreeMap;

/// An accumulator of folded stacks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FoldedStacks {
    map: BTreeMap<String, u64>,
}

impl FoldedStacks {
    /// An empty accumulator.
    pub fn new() -> FoldedStacks {
        FoldedStacks::default()
    }

    /// Records `count` samples of the stack `frames` (root first).
    pub fn record<S: AsRef<str>>(&mut self, frames: &[S], count: u64) {
        if frames.is_empty() || count == 0 {
            return;
        }
        let joined: Vec<&str> = frames.iter().map(|f| f.as_ref()).collect();
        self.record_key(&joined.join(";"), count);
    }

    /// Records `count` samples of an already-joined `a;b;c` stack key.
    pub fn record_key(&mut self, stack: &str, count: u64) {
        if stack.is_empty() || count == 0 {
            return;
        }
        *self.map.entry(stack.to_string()).or_insert(0) += count;
    }

    /// Sums `other` into `self`.
    pub fn merge(&mut self, other: &FoldedStacks) {
        for (k, v) in &other.map {
            *self.map.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// A copy with `prefix` prepended as the root frame of every stack.
    pub fn prefixed(&self, prefix: &str) -> FoldedStacks {
        let mut out = FoldedStacks::new();
        for (k, v) in &self.map {
            out.map.insert(format!("{prefix};{k}"), *v);
        }
        out
    }

    /// Total sample count over all stacks.
    pub fn total_samples(&self) -> u64 {
        self.map.values().sum()
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(stack, count)` in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Sample count attributed to each *leaf* frame (the flamegraph's
    /// self-cost view), sorted by descending count then frame name.
    pub fn leaf_totals(&self) -> Vec<(String, u64)> {
        let mut per_leaf: BTreeMap<&str, u64> = BTreeMap::new();
        for (k, v) in &self.map {
            let leaf = k.rsplit(';').next().unwrap_or(k);
            *per_leaf.entry(leaf).or_insert(0) += v;
        }
        let mut v: Vec<(String, u64)> =
            per_leaf.into_iter().map(|(k, c)| (k.to_string(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Renders the collapsed-stack text: one `stack count` line per entry,
    /// sorted lexicographically by stack.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (k, v) in &self.map {
            s.push_str(k);
            s.push(' ');
            s.push_str(&v.to_string());
            s.push('\n');
        }
        s
    }

    /// Parses collapsed-stack text produced by [`FoldedStacks::render`]
    /// (or any flamegraph tool). Duplicate stacks are summed.
    pub fn parse(text: &str) -> Result<FoldedStacks, String> {
        let mut out = FoldedStacks::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (stack, count) =
                line.rsplit_once(' ').ok_or_else(|| format!("line {}: no count", i + 1))?;
            let count: u64 =
                count.parse().map_err(|e| format!("line {}: bad count: {e}", i + 1))?;
            out.record_key(stack, count);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_render_sorted() {
        let mut f = FoldedStacks::new();
        f.record(&["main", "work", "leaf"], 3);
        f.record(&["main"], 1);
        f.record(&["main", "work", "leaf"], 2);
        assert_eq!(f.render(), "main 1\nmain;work;leaf 5\n");
        assert_eq!(f.total_samples(), 6);
    }

    #[test]
    fn empty_and_zero_records_ignored() {
        let mut f = FoldedStacks::new();
        f.record::<&str>(&[], 5);
        f.record(&["main"], 0);
        f.record_key("", 3);
        assert!(f.is_empty());
        assert_eq!(f.render(), "");
    }

    #[test]
    fn merge_sums() {
        let mut a = FoldedStacks::new();
        a.record(&["m", "f"], 2);
        let mut b = FoldedStacks::new();
        b.record(&["m", "f"], 3);
        b.record(&["m", "g"], 1);
        a.merge(&b);
        assert_eq!(a.render(), "m;f 5\nm;g 1\n");
    }

    #[test]
    fn prefixed_prepends_root() {
        let mut f = FoldedStacks::new();
        f.record(&["main", "leaf"], 4);
        let p = f.prefixed("prog;softbound@O0");
        assert_eq!(p.render(), "prog;softbound@O0;main;leaf 4\n");
        assert_eq!(p.total_samples(), 4);
    }

    #[test]
    fn parse_round_trips() {
        let mut f = FoldedStacks::new();
        f.record(&["main", "a:12"], 7);
        f.record(&["main"], 2);
        let text = f.render();
        let g = FoldedStacks::parse(&text).unwrap();
        assert_eq!(f, g);
        assert!(FoldedStacks::parse("nocount\n").is_err());
        assert!(FoldedStacks::parse("x notanumber\n").is_err());
        assert_eq!(FoldedStacks::parse("\n\n").unwrap(), FoldedStacks::new());
    }

    #[test]
    fn leaf_totals_aggregate_self_cost() {
        let mut f = FoldedStacks::new();
        f.record(&["main", "hot"], 10);
        f.record(&["main", "other", "hot"], 5);
        f.record(&["main"], 3);
        let leaves = f.leaf_totals();
        assert_eq!(leaves[0], ("hot".to_string(), 15));
        assert_eq!(leaves[1], ("main".to_string(), 3));
    }

    #[test]
    fn merge_order_independent() {
        let mut parts = Vec::new();
        for i in 0..3u64 {
            let mut f = FoldedStacks::new();
            f.record(&["main", "w"], i + 1);
            f.record(&[format!("f{i}")], 1);
            parts.push(f);
        }
        let mut fwd = FoldedStacks::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = FoldedStacks::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd.render(), rev.render());
    }
}
