//! A typed metrics registry with deterministic serialization.
//!
//! Three metric kinds, all `u64`-valued:
//!
//! - **counter** — monotone tally; [merging](Registry::merge) sums.
//! - **gauge** — a level (peak memory, table sizes); merging takes the max,
//!   so a sweep-level gauge is the worst case over its workers.
//! - **histogram** — bucketed distribution with inclusive `le` upper bounds
//!   plus an implicit `+Inf` overflow bucket; merging sums bucket-wise.
//!
//! Metrics are keyed by `(name, sorted labels)` in `BTreeMap`s, so iteration
//! — and therefore the `mi-metrics/1` JSON and Prometheus text renderings —
//! is fully deterministic regardless of insertion order.

use std::collections::BTreeMap;

/// Identity of one time series: metric name plus sorted label pairs.
type Key = (String, Vec<(String, String)>);

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut l: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    l.sort();
    (name.to_string(), l)
}

/// Default histogram bounds: decades covering cost-unit magnitudes seen in
/// practice (one corpus cell runs ~1e2..1e9 cost units).
pub const DEFAULT_BOUNDS: [u64; 8] =
    [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000];

/// A bucketed distribution of `u64` observations.
///
/// `counts[i]` tallies observations `v <= bounds[i]` that exceeded every
/// earlier bound; the final slot counts overflow past the last bound
/// (`+Inf`). Rendered cumulatively in Prometheus style.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    sum: u64,
    count: u64,
}

impl Histogram {
    /// An empty histogram with the given strictly increasing bounds.
    pub fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be increasing");
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], sum: 0, count: 0 }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        let slot = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Sums `other` into `self`. Both sides must share bounds.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bound mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// The configured upper bounds (exclusive of the implicit `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts; last entry is the `+Inf` bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// The metrics registry. See the module docs for merge semantics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Registry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, u64>,
    histograms: BTreeMap<Key, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `delta` to the counter `name{labels}`.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        *self.counters.entry(key(name, labels)).or_insert(0) += delta;
    }

    /// Sets the gauge `name{labels}` to `value`.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.gauges.insert(key(name, labels), value);
    }

    /// Raises the gauge `name{labels}` to `value` if it is below it.
    pub fn gauge_max(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        let g = self.gauges.entry(key(name, labels)).or_insert(0);
        *g = (*g).max(value);
    }

    /// Records `value` into the histogram `name{labels}` (default bounds).
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.histograms
            .entry(key(name, labels))
            .or_insert_with(|| Histogram::new(&DEFAULT_BOUNDS))
            .observe(value);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters.get(&key(name, labels)).copied().unwrap_or(0)
    }

    /// Current value of a gauge (0 if never touched).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.gauges.get(&key(name, labels)).copied().unwrap_or(0)
    }

    /// The histogram `name{labels}`, if any observation was recorded.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.histograms.get(&key(name, labels))
    }

    /// Sum of a counter over every label combination carrying `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.iter().filter(|((n, _), _)| n == name).map(|(_, v)| v).sum()
    }

    /// All counters in deterministic `(name, labels)` order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, &[(String, String)], u64)> {
        self.counters.iter().map(|((n, l), v)| (n.as_str(), l.as_slice(), *v))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges `other` into `self`: counters sum, gauges take the max,
    /// histograms sum bucket-wise.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let g = self.gauges.entry(k.clone()).or_insert(0);
            *g = (*g).max(*v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Serializes as versioned `mi-metrics/1` JSON (deterministic order).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"mi-metrics/1\",\n  \"counters\": [");
        push_scalar_entries(&mut s, &self.counters);
        s.push_str("],\n  \"gauges\": [");
        push_scalar_entries(&mut s, &self.gauges);
        s.push_str("],\n  \"histograms\": [");
        let mut first = true;
        for ((name, labels), h) in &self.histograms {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str("\n    {\"name\": ");
            push_json_str(&mut s, name);
            s.push_str(", \"labels\": ");
            push_labels_json(&mut s, labels);
            s.push_str(", \"buckets\": [");
            for (i, c) in h.counts.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let le = match h.bounds.get(i) {
                    Some(b) => format!("\"{b}\""),
                    None => "\"+Inf\"".to_string(),
                };
                s.push_str(&format!("{{\"le\": {le}, \"count\": {c}}}"));
            }
            s.push_str(&format!("], \"sum\": {}, \"count\": {}}}", h.sum, h.count));
        }
        if !self.histograms.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Serializes as single-line `mi-metrics/1` JSON, for carriers whose
    /// framing is newline-delimited (the `mi serve` daemon's `metrics`
    /// responses). In [`Registry::to_json`] raw newlines are structural
    /// only — string values escape them — so joining the trimmed lines
    /// yields an equivalent document with no `0x0A` byte.
    pub fn to_json_line(&self) -> String {
        let mut s = String::new();
        for line in self.to_json().lines() {
            s.push_str(line.trim_start());
        }
        s
    }

    /// Serializes in the Prometheus text exposition format (deterministic
    /// order; histogram buckets rendered cumulatively per convention).
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        let mut last_type_line = String::new();
        let mut type_line = |s: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                s.push_str(&line);
                last_type_line = line;
            }
        };
        for ((name, labels), v) in &self.counters {
            type_line(&mut s, name, "counter");
            s.push_str(&format!("{name}{} {v}\n", prom_labels(labels, None)));
        }
        for ((name, labels), v) in &self.gauges {
            type_line(&mut s, name, "gauge");
            s.push_str(&format!("{name}{} {v}\n", prom_labels(labels, None)));
        }
        for ((name, labels), h) in &self.histograms {
            type_line(&mut s, name, "histogram");
            let mut cum = 0u64;
            for (i, c) in h.counts.iter().enumerate() {
                cum += c;
                let le = match h.bounds.get(i) {
                    Some(b) => b.to_string(),
                    None => "+Inf".to_string(),
                };
                s.push_str(&format!(
                    "{name}_bucket{} {cum}\n",
                    prom_labels(labels, Some(("le", &le)))
                ));
            }
            s.push_str(&format!("{name}_sum{} {}\n", prom_labels(labels, None), h.sum));
            s.push_str(&format!("{name}_count{} {}\n", prom_labels(labels, None), h.count));
        }
        s
    }
}

fn push_scalar_entries(s: &mut String, map: &BTreeMap<Key, u64>) {
    let mut first = true;
    for ((name, labels), v) in map {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str("\n    {\"name\": ");
        push_json_str(s, name);
        s.push_str(", \"labels\": ");
        push_labels_json(s, labels);
        s.push_str(&format!(", \"value\": {v}}}"));
    }
    if !map.is_empty() {
        s.push_str("\n  ");
    }
}

fn push_labels_json(s: &mut String, labels: &[(String, String)]) {
    s.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        push_json_str(s, k);
        s.push_str(": ");
        push_json_str(s, v);
    }
    s.push('}');
}

fn push_json_str(s: &mut String, raw: &str) {
    s.push('"');
    for c in raw.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_is_newline_free_and_equivalent() {
        let mut r = Registry::new();
        r.counter_add("ops", &[("op", "with\nnewline")], 2);
        r.gauge_set("depth", &[], 3);
        r.observe("latency", &[("route", "job")], 17);
        let line = r.to_json_line();
        assert!(!line.contains('\n'), "{line}");
        assert!(line.starts_with("{\"schema\": \"mi-metrics/1\","), "{line}");
        // The escaped newline inside the label value survives.
        assert!(line.contains("with\\nnewline"), "{line}");
        // Same document, just reflowed.
        let reflowed: String =
            r.to_json().lines().map(|l| l.trim_start()).collect::<Vec<_>>().join("");
        assert_eq!(line, reflowed);
    }

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut r = Registry::new();
        r.counter_add("ops", &[("op", "load")], 2);
        r.counter_add("ops", &[("op", "load")], 3);
        r.counter_add("ops", &[("op", "store")], 1);
        assert_eq!(r.counter("ops", &[("op", "load")]), 5);
        assert_eq!(r.counter("ops", &[("op", "store")]), 1);
        assert_eq!(r.counter("ops", &[("op", "gep")]), 0);
        assert_eq!(r.counter_total("ops"), 6);
    }

    #[test]
    fn label_order_does_not_matter() {
        let mut r = Registry::new();
        r.counter_add("x", &[("a", "1"), ("b", "2")], 1);
        r.counter_add("x", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(r.counter("x", &[("a", "1"), ("b", "2")]), 2);
        assert_eq!(r.counters().count(), 1);
    }

    #[test]
    fn gauges_set_and_max() {
        let mut r = Registry::new();
        r.gauge_set("peak", &[], 10);
        r.gauge_max("peak", &[], 5);
        assert_eq!(r.gauge("peak", &[]), 10);
        r.gauge_max("peak", &[], 50);
        assert_eq!(r.gauge("peak", &[]), 50);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [5, 10, 11, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 2, 1]);
        assert_eq!(h.sum(), 1126);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn merge_semantics() {
        let mut a = Registry::new();
        a.counter_add("c", &[], 1);
        a.gauge_max("g", &[], 7);
        a.observe("h", &[], 500);
        let mut b = Registry::new();
        b.counter_add("c", &[], 2);
        b.gauge_max("g", &[], 3);
        b.observe("h", &[], 2_000_000_000);
        a.merge(&b);
        assert_eq!(a.counter("c", &[]), 3);
        assert_eq!(a.gauge("g", &[]), 7);
        let h = a.histogram("h", &[]).unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 2_000_000_500);
        assert_eq!(*h.counts().last().unwrap(), 1, "2e9 overflows the last decade bound");
    }

    #[test]
    fn merge_order_independent_serialization() {
        let mut parts = Vec::new();
        for i in 0..4u64 {
            let mut r = Registry::new();
            r.counter_add("ops", &[("w", "x")], i + 1);
            r.gauge_max("peak", &[], i * 10);
            r.observe("dist", &[], i * 1000);
            parts.push(r);
        }
        let mut fwd = Registry::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Registry::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.to_json(), rev.to_json());
        assert_eq!(fwd.to_prometheus(), rev.to_prometheus());
    }

    #[test]
    fn json_shape() {
        let mut r = Registry::new();
        r.counter_add("vm_ops", &[("op", "load")], 3);
        r.gauge_set("peak_bytes", &[], 4096);
        r.observe("cell_cost", &[], 50);
        let j = r.to_json();
        assert!(j.starts_with("{\n  \"schema\": \"mi-metrics/1\""), "{j}");
        assert!(j.contains("{\"name\": \"vm_ops\", \"labels\": {\"op\": \"load\"}, \"value\": 3}"));
        assert!(j.contains("{\"name\": \"peak_bytes\", \"labels\": {}, \"value\": 4096}"));
        assert!(j.contains("{\"le\": \"100\", \"count\": 1}"));
        assert!(j.contains("{\"le\": \"+Inf\", \"count\": 0}"));
        assert!(j.contains("\"sum\": 50, \"count\": 1}"));
        assert!(j.ends_with("]\n}\n"));
    }

    #[test]
    fn empty_registry_json_is_valid_shape() {
        let j = Registry::new().to_json();
        assert_eq!(
            j,
            "{\n  \"schema\": \"mi-metrics/1\",\n  \"counters\": [],\n  \"gauges\": [],\n  \"histograms\": []\n}\n"
        );
    }

    #[test]
    fn prometheus_shape() {
        let mut r = Registry::new();
        r.counter_add("ops", &[("op", "load")], 3);
        r.counter_add("ops", &[("op", "store")], 4);
        r.gauge_set("peak", &[], 9);
        let mut h = Histogram::new(&[10]);
        h.observe(5);
        h.observe(50);
        r.histograms.insert(key("lat", &[]), h);
        let p = r.to_prometheus();
        assert_eq!(p.matches("# TYPE ops counter").count(), 1, "one TYPE line per name");
        assert!(p.contains("ops{op=\"load\"} 3\n"));
        assert!(p.contains("ops{op=\"store\"} 4\n"));
        assert!(p.contains("# TYPE peak gauge\npeak 9\n"));
        assert!(p.contains("lat_bucket{le=\"10\"} 1\n"));
        assert!(p.contains("lat_bucket{le=\"+Inf\"} 2\n"), "buckets are cumulative");
        assert!(p.contains("lat_sum 55\n"));
        assert!(p.contains("lat_count 2\n"));
    }

    #[test]
    fn json_escaping() {
        let mut r = Registry::new();
        r.counter_add("weird", &[("path", "a\"b\\c\nd")], 1);
        let j = r.to_json();
        assert!(j.contains("\"a\\\"b\\\\c\\nd\""), "{j}");
    }
}
