//! Deterministic observability primitives shared by the VM, the evaluation
//! driver, and the CLI.
//!
//! Two building blocks:
//!
//! - [`metrics::Registry`] — a typed metrics registry (counters, gauges,
//!   histograms) with plain `u64` fields and no atomics. Workers each fill a
//!   private registry and the results are [merged](metrics::Registry::merge)
//!   in deterministic order, so serialized output is byte-identical across
//!   worker counts. Serializes as versioned `mi-metrics/1` JSON and as the
//!   Prometheus text exposition format.
//! - [`flame::FoldedStacks`] — an accumulator for collapsed call stacks in
//!   the inferno/flamegraph "folded" format (`a;b;c 42` lines). The VM's
//!   cost-driven sampler feeds this; because sampling is driven by the
//!   deterministic cost model rather than wall clock, rendered output is
//!   byte-identical across VM backends and worker counts.
//!
//! Everything is integer-valued and iterated in sorted order: determinism is
//! the design constraint, not an afterthought.

pub mod flame;
pub mod metrics;

pub use flame::FoldedStacks;
pub use metrics::{Histogram, Registry};
