//! The usability pitfalls of §4 of the paper, reproduced end-to-end:
//!
//! 1. §4.2 — out-of-bounds pointer arithmetic that is repaired before the
//!    dereference: fine for SoftBound, *spurious violation* for Low-Fat
//!    Pointers (the escape check enforces the in-bounds invariant).
//! 2. §4.4 — the `swap` function: two semantically equal IR lowerings, one
//!    storing pointers as pointers, one smuggling them through `i64` —
//!    the latter silently corrupts SoftBound's metadata and produces a
//!    *spurious violation* on a perfectly valid program.
//! 3. §4.5 — byte-wise copying of a struct containing a pointer: same
//!    effect, and much harder to spot in real code.
//!
//! ```text
//! cargo run --example usability_pitfalls
//! ```

use meminstrument::runtime::{compile_and_run, BuildOptions};
use meminstrument::{Mechanism, MiConfig};

fn show(title: &str, module: &mir::Module) {
    println!("== {title} ==");
    for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
        let r = compile_and_run(module.clone(), &MiConfig::new(mech), BuildOptions::default());
        match r {
            Ok(out) => println!(
                "  {:9}: ok, returned {}",
                mech.name(),
                out.ret.map(|v| v.as_int() as i64).unwrap_or(0)
            ),
            Err(t) => println!("  {:9}: {t}", mech.name()),
        }
    }
    println!();
}

fn main() {
    // --- 1. §4.2: escape-then-repair pointer arithmetic -------------------
    // 73 % of surveyed C experts believe this works (Memarian et al.).
    let c_src = r#"
        long peek(long *oob) {
            long *fixed = oob - 100;   /* brought back in bounds */
            return probe(fixed);
        }
        long probe(long *p) { return *p; }
        long main(void) {
            long *buf = (long*)malloc(64);
            *buf = 7;
            long *oob = buf + 100;     /* way past the object */
            return peek(oob);          /* pointer ESCAPES while out of bounds */
        }
    "#;
    let m = cfront::compile(c_src).unwrap();
    show("§4.2 out-of-bounds arithmetic, repaired before the dereference", &m);
    println!("The program never dereferences an out-of-bounds pointer, yet Low-Fat");
    println!("rejects it: passing `oob` to peek() must establish the in-bounds");
    println!("invariant, and the check fails. SoftBound only checks dereferences.\n");

    // --- 2. §4.4: the swap function, two lowerings ------------------------
    // The paper's Figure 7: LLVM 11 stores the pointers as pointers; LLVM 12
    // type-puns them through i64. We write both lowerings directly in IR.
    let swap_ptr = r#"
        hostdecl ptr @malloc(i64)
        define void @swap(ptr %one, ptr %two) {
        entry:
          %a = load ptr, %one
          %b = load ptr, %two
          store ptr, %b, %one
          store ptr, %a, %two
          ret
        }
        define i64 @main() {
        entry:
          %x = call ptr @malloc(i64 8)
          %y = call ptr @malloc(i64 8)
          store i64, i64 11, %x
          store i64, i64 22, %y
          %cell1 = call ptr @malloc(i64 8)
          %cell2 = call ptr @malloc(i64 8)
          store ptr, %x, %cell1
          store ptr, %y, %cell2
          call void @swap(%cell1, %cell2)
          %p = load ptr, %cell1
          %v = load i64, %p
          ret %v
        }
    "#;
    let swap_int = &swap_ptr.replace(
        r#"          %a = load ptr, %one
          %b = load ptr, %two
          store ptr, %b, %one
          store ptr, %a, %two"#,
        r#"          %a = load i64, %one
          %b = load i64, %two
          store i64, %b, %one
          store i64, %a, %two"#,
    );
    let m = mir::parser::parse_module(swap_ptr).unwrap();
    show("§4.4 swap, pointer-typed lowering (LLVM 11 style)", &m);
    let m = mir::parser::parse_module(swap_int).unwrap();
    show("§4.4 swap, integer-typed lowering (LLVM 12 style)", &m);
    println!("Same C function, two compiler versions: the integer lowering bypasses");
    println!("SoftBound's trie update, the stale bounds of the *old* pointer are");
    println!("looked up at the load, and a valid access is reported as a violation.");
    println!("Low-Fat derives the base from the value itself and is unaffected.\n");

    // --- 3. §4.5: byte-wise copying of in-memory pointers ------------------
    let bytewise = r#"
        struct holder { long *payload; };
        long main(void) {
            long *data = (long*)malloc(32);
            data[0] = 99;
            struct holder a;
            struct holder b;
            a.payload = data;
            /* copy the struct byte by byte, as the C standard allows */
            char *src = (char*)&a;
            char *dst = (char*)&b;
            for (long i = 0; i < sizeof(struct holder); i += 1) dst[i] = src[i];
            return *(b.payload);
        }
    "#;
    let m = cfront::compile(bytewise).unwrap();
    show("§4.5 byte-wise struct copy (300twolf's original bug pattern)", &m);
    println!("The pointer arrives at `b.payload` without a pointer-typed store, so");
    println!("SoftBound's metadata for it is missing (NULL bounds) and the valid");
    println!("dereference aborts. The paper patched 300twolf to use memcpy, whose");
    println!("wrapper copies the metadata — which is what our memcpy handling does.");
}
