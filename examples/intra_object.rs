//! Appendix B of the paper: intra-object overflows.
//!
//! `&P.y - 1` steps from one struct member into the (implementation-
//! defined) territory of another. Low-Fat Pointers cannot detect this by
//! design (the whole struct is one padded object). SoftBound *could* narrow
//! bounds to the member — but in the IR the member access is just address
//! arithmetic (`gep`), the member boundary is gone, and whole-object bounds
//! are all either tool checks against. (The paper's Figure 14 shows clang
//! -O1 folding the arithmetic away entirely; our frontend keeps a `gep -1`,
//! with the same net effect: nothing member-level survives to check.)
//!
//! ```text
//! cargo run --example intra_object
//! ```

use meminstrument::runtime::{compile_and_run, BuildOptions};
use meminstrument::{Mechanism, MiConfig};
use mir::instr::InstrKind;

fn main() {
    let src = r#"
        struct simple_pair { int x; int y; };
        struct simple_pair P;
        long main(void) {
            int *py = &P.y;
            int *q = py - 1;     /* points at P.x — or at padding? */
            *q = 77;
            return P.x;          /* reads 77: the write landed in x */
        }
    "#;
    let module = cfront::compile(src).unwrap();

    // Show what the IR looks like after optimization: the member arithmetic
    // has been folded into gep offsets before instrumentation could see it.
    let mut optimized = module.clone();
    mir::Pipeline::default().run(&mut optimized);
    let (_, f) = optimized.function_by_name("main").unwrap();
    println!("optimized IR of main():");
    print!("{}", mir::printer::print_function(f));
    let geps = f
        .blocks
        .iter()
        .flat_map(|b| b.instrs.iter().map(|&i| &f.instrs[i.index()].kind))
        .filter(|k| matches!(k, InstrKind::Gep { .. }))
        .count();
    println!("\n{geps} gep(s): plain address arithmetic — no member boundary survives.\n");

    for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
        let r = compile_and_run(module.clone(), &MiConfig::new(mech), BuildOptions::default());
        match r {
            Ok(out) => println!(
                "{:9}: ran fine, main returned {} — intra-object overflow undetected",
                mech.name(),
                out.ret.unwrap().as_int()
            ),
            Err(t) => println!("{:9}: {t}", mech.name()),
        }
    }

    println!();
    println!("Neither mechanism reports anything: Low-Fat cannot (one padded object),");
    println!("and SoftBound's whole-object bounds cover the entire struct. Appendix B");
    println!("argues automatic bounds narrowing is unsound anyway: &P == &P.x by the");
    println!("standard, and narrowing to the first member breaks that idiom.");
}
