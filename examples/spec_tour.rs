//! A guided tour through the benchmark suite: runs three benchmarks with
//! paper-distinctive behaviour through every configuration and prints a
//! compact comparison — a miniature of the full `bench` harness.
//!
//! ```text
//! cargo run --release --example spec_tour
//! ```

use meminstrument::runtime::BuildOptions;
use meminstrument::{Mechanism, MiConfig};
use mir::pipeline::ExtensionPoint;

fn main() {
    for name in ["183equake", "186crafty", "429mcf"] {
        let b = cbench::by_name(name).expect("benchmark exists");
        println!("== {name} ==");
        println!("{}\n", b.description.split_whitespace().collect::<Vec<_>>().join(" "));

        let base = cbench::run_baseline(&b, BuildOptions::default()).unwrap();
        let base_cost = base.exec.stats.cost_total;
        println!("  baseline -O3: cost {base_cost}, output {:?}", base.exec.output);

        for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
            let r = cbench::run(&b, &MiConfig::new(mech), BuildOptions::default()).unwrap();
            let s = &r.exec.stats;
            println!(
                "  {:9}: {:.2}x slowdown | {} checks ({:.2}% wide) | {} metadata loads | {} invariant checks",
                mech.name(),
                s.cost_total as f64 / base_cost as f64,
                s.checks_executed,
                s.wide_check_percent(),
                s.metadata_loads,
                s.invariant_checks_executed,
            );
        }

        // The pipeline effect (§5.5) on this benchmark, SoftBound only.
        print!("  softbound by extension point:");
        for ep in ExtensionPoint::ALL {
            let r = cbench::run(
                &b,
                &MiConfig::new(Mechanism::SoftBound),
                BuildOptions { ep, ..BuildOptions::default() },
            )
            .unwrap();
            print!(" {}={:.2}x", ep.name(), r.exec.stats.cost_total as f64 / base_cost as f64);
        }
        println!("\n");
    }
    println!("Full experiment suite: cargo run --release -p bench --bin report");
}
