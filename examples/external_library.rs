//! §4.3 of the paper: linking against *uninstrumented* libraries.
//!
//! * A library function that returns a pointer leaves SoftBound's shadow
//!   stack untouched: the caller reads stale return bounds and reports a
//!   violation for a perfectly safe access. Low-Fat still works, because
//!   the library's heap allocation went through the (replaced) low-fat
//!   malloc and the base is recoverable from the pointer value.
//! * An external array declared without size (`extern int arr[];`) forces
//!   SoftBound to choose between NULL bounds (spurious reports) and wide
//!   bounds (no protection) — the artifact flag `-mi-sb-size-zero-wide-upper`.
//!
//! ```text
//! cargo run --example external_library
//! ```

use meminstrument::runtime::{compile, compile_and_run, BuildOptions};
use meminstrument::{Mechanism, MiConfig};
use memvm::VmConfig;

fn main() {
    // `lib_make_buffer` models a function in a precompiled library: its body
    // executes, but it is never instrumented and maintains no metadata.
    let returns_pointer = r#"
        uninstrumented long *lib_make_buffer(long n) {
            long *p = (long*)malloc(n * sizeof(long));
            for (long i = 0; i < n; i += 1) p[i] = i;
            return p;
        }
        long main(void) {
            long *buf = lib_make_buffer(10);
            return buf[3];   /* perfectly safe */
        }
    "#;
    let m = cfront::compile(returns_pointer).unwrap();
    println!("== library function returns a pointer ==");
    for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
        let r = compile_and_run(m.clone(), &MiConfig::new(mech), BuildOptions::default());
        match r {
            Ok(out) => println!("  {:9}: ok, returned {}", mech.name(), out.ret.unwrap().as_int()),
            Err(t) => println!("  {:9}: {t}", mech.name()),
        }
    }
    println!("SoftBound assumed the return bounds were on the shadow stack; the");
    println!("uninstrumented callee never put them there (§4.3). The real fix is a");
    println!("hand-written wrapper per library function. Low-Fat needs nothing: the");
    println!("library allocated through the low-fat malloc automatically.\n");

    // Size-less external arrays: with the paper's flag the accesses become
    // unverifiable (wide) instead of spurious, trading safety for usability.
    let extern_array = r#"
        __hidden_size int file_table[64];
        long main(void) {
            long sum = 0;
            for (long i = 0; i < 64; i += 1) {
                file_table[i] = (int)i;
                sum += file_table[i];
            }
            return sum;
        }
    "#;
    let m = cfront::compile(extern_array).unwrap();
    println!("== external array declared without size ==");
    for (label, cfg) in [
        ("softbound + wide-upper flag (paper basis)", MiConfig::new(Mechanism::SoftBound)),
        ("softbound, flag disabled (NULL bounds)", {
            let mut c = MiConfig::new(Mechanism::SoftBound);
            c.sb_size_zero_wide_upper = false;
            c
        }),
        ("lowfat (mirrors the definition, size not needed)", MiConfig::new(Mechanism::LowFat)),
    ] {
        let prog = compile(m.clone(), &cfg, BuildOptions::default());
        match prog.run_main(VmConfig::default()) {
            Ok(out) => println!(
                "  {label}: ok (ret {}), {} of {} checks wide",
                out.ret.unwrap().as_int(),
                out.stats.checks_wide,
                out.stats.checks_executed
            ),
            Err(t) => println!("  {label}: {t}"),
        }
    }
    println!("\nThis is the 164gzip situation of Table 2: with the wide-upper flag the");
    println!("program runs, but 62 % of gzip's checks verify nothing. Without the");
    println!("flag the very first access reports a spurious violation.");
}
