//! Quickstart: compile a buggy C program, instrument it with both
//! mechanisms, and watch who catches what.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use meminstrument::runtime::{compile, compile_baseline, BuildOptions};
use meminstrument::{Mechanism, MiConfig};
use memvm::VmConfig;

/// Off-by-one: `i <= N` walks one element past the end.
fn buggy(n: usize) -> String {
    format!(
        r#"
        long main(void) {{
            long *buf = (long*)malloc(10 * sizeof(long));
            long sum = 0;
            for (long i = 0; i <= {n}; i += 1) {{
                buf[i] = i * i;
                sum += buf[i];
            }}
            print_i64(sum);
            return 0;
        }}
    "#
    )
}

fn run_all(title: &str, src: &str) {
    println!("== {title} ==");
    let module = cfront::compile(src).expect("mini-C compiles");

    let base = compile_baseline(module.clone(), BuildOptions::default());
    match base.run_main(VmConfig::default()) {
        Ok(out) => println!("  baseline : ran to completion, printed {:?}", out.output),
        Err(t) => println!("  baseline : unexpected trap: {t}"),
    }

    for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
        let prog = compile(module.clone(), &MiConfig::new(mech), BuildOptions::default());
        match prog.run_main(VmConfig::default()) {
            Ok(out) => println!(
                "  {:9}: MISSED (output {:?}, {} checks executed)",
                mech.name(),
                out.output,
                out.stats.checks_executed
            ),
            Err(t) => println!("  {:9}: caught — {t}", mech.name()),
        }
    }
    println!();
}

fn main() {
    // buf has 10 longs = 80 bytes; the low-fat allocator pads it to 128.
    run_all("one element past the end (offset 80..88)", &buggy(10));
    println!("SoftBound uses the exact 80-byte bounds and reports the overflow.");
    println!("Low-Fat Pointers cannot see into their padding (§4 of the paper):");
    println!("offsets 80..127 are inside the padded object and go undetected.\n");

    run_all("seven elements past the end (offset 128..136)", &buggy(16));
    println!("Once the access leaves the 128-byte padded object, Low-Fat reports too.");
}
