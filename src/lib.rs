//! Umbrella crate: see the workspace crates.
